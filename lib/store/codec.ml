exception Error of string

let err fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type 'a t = {
  write : Buffer.t -> 'a -> unit;
  read : string -> int ref -> 'a;
}

(* One tag byte per value.  Primitives get distinct letters; composites
   tag themselves and then tag each component, so nesting mismatches
   surface at the exact depth they occur. *)
let tag_unit = 'u'
let tag_bool = 'b'
let tag_int = 'i'
let tag_float = 'f'
let tag_string = 's'
let tag_int_array = 'w'
let tag_pair = 'p'
let tag_triple = 't'
let tag_option = 'o'
let tag_list = 'l'
let tag_array = 'a'

let need s pos n =
  if !pos + n > String.length s then err "truncated value at byte %d" !pos

let get_tag s pos expect =
  need s pos 1;
  let c = s.[!pos] in
  incr pos;
  if c <> expect then
    err "type tag mismatch at byte %d: expected '%c', found %C" (!pos - 1) expect c

let put_tag b t = Buffer.add_char b t

let put_u64 b v = Buffer.add_int64_le b (Int64.of_int v)

let get_u64 s pos =
  need s pos 8;
  let v = Int64.to_int (String.get_int64_le s !pos) in
  pos := !pos + 8;
  v

let unit =
  {
    write = (fun b () -> put_tag b tag_unit);
    read = (fun s pos -> get_tag s pos tag_unit);
  }

let bool =
  {
    write =
      (fun b v ->
        put_tag b tag_bool;
        Buffer.add_char b (if v then '\001' else '\000'));
    read =
      (fun s pos ->
        get_tag s pos tag_bool;
        need s pos 1;
        let c = s.[!pos] in
        incr pos;
        match c with
        | '\000' -> false
        | '\001' -> true
        | c -> err "invalid bool byte %C at %d" c (!pos - 1));
  }

let int =
  {
    write =
      (fun b v ->
        put_tag b tag_int;
        put_u64 b v);
    read =
      (fun s pos ->
        get_tag s pos tag_int;
        get_u64 s pos);
  }

let float =
  {
    write =
      (fun b v ->
        put_tag b tag_float;
        Buffer.add_int64_le b (Int64.bits_of_float v));
    read =
      (fun s pos ->
        get_tag s pos tag_float;
        need s pos 8;
        let v = Int64.float_of_bits (String.get_int64_le s !pos) in
        pos := !pos + 8;
        v);
  }

let get_len s pos =
  let n = get_u64 s pos in
  if n < 0 || n > String.length s - !pos then err "invalid length %d at byte %d" n !pos;
  n

let string =
  {
    write =
      (fun b v ->
        put_tag b tag_string;
        put_u64 b (String.length v);
        Buffer.add_string b v);
    read =
      (fun s pos ->
        get_tag s pos tag_string;
        let n = get_len s pos in
        let v = String.sub s !pos n in
        pos := !pos + n;
        v);
  }

let int_array =
  {
    write =
      (fun b v ->
        put_tag b tag_int_array;
        put_u64 b (Array.length v);
        Array.iter (fun x -> put_u64 b x) v);
    read =
      (fun s pos ->
        get_tag s pos tag_int_array;
        let n = get_u64 s pos in
        if n < 0 || n > (String.length s - !pos) / 8 then
          err "invalid array length %d at byte %d" n !pos;
        Array.init n (fun _ -> get_u64 s pos));
  }

let pair a b =
  {
    write =
      (fun buf (x, y) ->
        put_tag buf tag_pair;
        a.write buf x;
        b.write buf y);
    read =
      (fun s pos ->
        get_tag s pos tag_pair;
        let x = a.read s pos in
        let y = b.read s pos in
        (x, y));
  }

let triple a b c =
  {
    write =
      (fun buf (x, y, z) ->
        put_tag buf tag_triple;
        a.write buf x;
        b.write buf y;
        c.write buf z);
    read =
      (fun s pos ->
        get_tag s pos tag_triple;
        let x = a.read s pos in
        let y = b.read s pos in
        let z = c.read s pos in
        (x, y, z));
  }

let option a =
  {
    write =
      (fun buf v ->
        put_tag buf tag_option;
        match v with
        | None -> Buffer.add_char buf '\000'
        | Some x ->
            Buffer.add_char buf '\001';
            a.write buf x);
    read =
      (fun s pos ->
        get_tag s pos tag_option;
        need s pos 1;
        let c = s.[!pos] in
        incr pos;
        match c with
        | '\000' -> None
        | '\001' -> Some (a.read s pos)
        | c -> err "invalid option byte %C at %d" c (!pos - 1));
  }

let list a =
  {
    write =
      (fun buf v ->
        put_tag buf tag_list;
        put_u64 buf (List.length v);
        List.iter (a.write buf) v);
    read =
      (fun s pos ->
        get_tag s pos tag_list;
        let n = get_len s pos in
        List.init n (fun _ -> a.read s pos));
  }

let array a =
  {
    write =
      (fun buf v ->
        put_tag buf tag_array;
        put_u64 buf (Array.length v);
        Array.iter (a.write buf) v);
    read =
      (fun s pos ->
        get_tag s pos tag_array;
        let n = get_len s pos in
        Array.init n (fun _ -> a.read s pos));
  }

let view ~inject ~extract b =
  {
    write = (fun buf v -> b.write buf (inject v));
    read = (fun s pos -> extract (b.read s pos));
  }

let encode c v =
  let b = Buffer.create 256 in
  c.write b v;
  Buffer.contents b

let decode c s =
  let pos = ref 0 in
  let v = c.read s pos in
  if !pos <> String.length s then err "%d trailing bytes after value" (String.length s - !pos);
  v
