let src = Logs.Src.create "tcmm.store" ~doc:"Compiled-circuit artifact store"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  dir : string;
  kernels : bool;
  mutable n_loads : int;
  mutable n_saves : int;
  mutable n_invalid : int;
}

type counters = { loads : int; saves : int; invalid : int }

let rec mkdir_p path =
  if path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(kernels = true) ~dir () =
  match
    mkdir_p dir;
    if not (Sys.is_directory dir) then Error (dir ^ " is not a directory")
    else Ok { dir; kernels; n_loads = 0; n_saves = 0; n_invalid = 0 }
  with
  | r -> r
  | exception e -> Error (Printexc.to_string e)

let dir t = t.dir
let counters t = { loads = t.n_loads; saves = t.n_saves; invalid = t.n_invalid }

(* Spec keys contain ['|'], ['='] and anything an algorithm name holds;
   percent-encode everything outside the portable filename set.  The
   encoding is injective, so distinct keys never collide on disk. *)
let sanitize key =
  let b = Buffer.create (String.length key + 8) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> Buffer.add_char b c
      | c -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    key;
  Buffer.contents b

let path_of_key t key = Filename.concat t.dir (sanitize key ^ ".tcmm")

let quarantine t path reason =
  t.n_invalid <- t.n_invalid + 1;
  let dest = path ^ ".corrupt" in
  (try Unix.rename path dest
   with e ->
     Log.warn (fun m ->
         m "could not quarantine %s: %s" path (Printexc.to_string e)));
  Log.warn (fun m -> m "quarantined %s: %s" path reason)

let find t ~key =
  let path = path_of_key t key in
  if not (Sys.file_exists path) then None
  else
    match Artifact.read ~kernels:t.kernels ~key ~path () with
    | Ok a ->
        t.n_loads <- t.n_loads + 1;
        if a.Artifact.a_kern_recompiled then
          Log.info (fun m ->
              m "loaded %s (%d bytes), kernels recompiled (artifact rev %d, current %d)"
                path a.Artifact.a_bytes a.Artifact.a_header.Artifact.h_kernel_rev
                Tcmm_threshold.Kernel.format_rev)
        else Log.info (fun m -> m "loaded %s (%d bytes)" path a.Artifact.a_bytes);
        Some a
    | Error reason ->
        quarantine t path reason;
        None

let save t ~meta packed =
  let path = path_of_key t meta.Artifact.m_key in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  match Artifact.write ~path:tmp meta packed with
  | Ok bytes -> (
      match Unix.rename tmp path with
      | () ->
          t.n_saves <- t.n_saves + 1;
          Log.info (fun m -> m "saved %s (%d bytes)" path bytes);
          Ok bytes
      | exception e ->
          (try Unix.unlink tmp with _ -> ());
          let m = Printexc.to_string e in
          Log.err (fun f -> f "could not publish %s: %s" path m);
          Error m)
  | Error m ->
      (try Unix.unlink tmp with _ -> ());
      Log.err (fun f -> f "could not write %s: %s" tmp m);
      Error m

let artifact_files t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".tcmm")
  |> List.sort compare

let list t =
  List.map
    (fun f -> (f, Artifact.read_header ~path:(Filename.concat t.dir f)))
    (artifact_files t)

let is_temp f =
  match String.rindex_opt f '.' with
  | Some _ ->
      (* <base>.tmp.<pid> *)
      let rec has_tmp i =
        match String.index_from_opt f i '.' with
        | None -> false
        | Some j ->
            String.length f - j > 4 && String.sub f j 5 = ".tmp." || has_tmp (j + 1)
      in
      has_tmp 0
  | None -> false

let gc t ~removed =
  let freed = ref 0 in
  Array.iter
    (fun f ->
      let path = Filename.concat t.dir f in
      let dead =
        if Filename.check_suffix f ".corrupt" || is_temp f then true
        else if Filename.check_suffix f ".tcmm" then
          match Artifact.read_header ~path with Ok _ -> false | Error _ -> true
        else false
      in
      if dead then begin
        let bytes = try (Unix.stat path).Unix.st_size with _ -> 0 in
        match Unix.unlink path with
        | () ->
            freed := !freed + bytes;
            removed f
        | exception e ->
            Log.warn (fun m -> m "gc could not remove %s: %s" path (Printexc.to_string e))
      end)
    (Sys.readdir t.dir);
  !freed
