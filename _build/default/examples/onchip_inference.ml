(* On-chip CNN inference: a two-layer fixed-weight network compiled to a
   single constant-depth threshold circuit.

   The paper's motivating vision (Sections 1 and 5) is to keep the
   linear algebra of deep networks on neuromorphic hardware instead of
   shipping it to a GPU.  For inference the kernel weights are constants,
   and constants need no multiplication circuits at all: they become gate
   weights, so each convolution layer costs depth 2 and each ReLU depth 3
   — this example compiles

       conv(3x3, 4 kernels, biased) -> ReLU -> max-pool(2x2)
         -> conv(2x2, 2 kernels)

   over an 8x8 image into one circuit, simulates it (both as a DAG and as
   a per-tick spiking network), and checks every output against exact
   integer inference.

   Run with: dune exec examples/onchip_inference.exe *)

module C = Tcmm_convnet
module Th = Tcmm_threshold

let () =
  let rng = Tcmm_util.Prng.create ~seed:5 in
  let img = C.Image.random rng ~channels:1 ~height:8 ~width:8 ~lo:0 ~hi:7 in
  let k1 =
    Array.init 4 (fun _ -> C.Image.random rng ~channels:1 ~height:3 ~width:3 ~lo:(-2) ~hi:2)
  in
  let k2 =
    Array.init 2 (fun _ -> C.Image.random rng ~channels:4 ~height:2 ~width:2 ~lo:(-1) ~hi:1)
  in
  let bias = [| 2; -1; 0; 3 |] in
  let s1 = { C.Im2col.q = 3; stride = 1 } and s2 = { C.Im2col.q = 2; stride = 1 } in

  (* Compile the whole network into one circuit. *)
  let b = Th.Builder.create () in
  let fm, write =
    C.Inference.input_image b ~channels:1 ~height:8 ~width:8 ~entry_bits:3 ~signed:false
  in
  let layer1 =
    C.Inference.relu b (C.Inference.conv_fixed ~bias b ~spec:s1 ~kernels:k1 fm)
  in
  let pooled = C.Inference.max_pool b ~size:2 layer1 in
  let layer2 = C.Inference.conv_fixed b ~spec:s2 ~kernels:k2 pooled in
  Array.iter
    (Array.iter
       (Array.iter (fun (sb : Tcmm_arith.Repr.signed_bits) ->
            Array.iter (Th.Builder.output b) sb.Tcmm_arith.Repr.pos_bits;
            Array.iter (Th.Builder.output b) sb.Tcmm_arith.Repr.neg_bits)))
    layer2;
  let circuit = Th.Builder.finalize b in
  let stats = Th.Circuit.stats circuit in
  Format.printf
    "Network circuit: conv 3x3 (4 kernels, biased) -> ReLU -> max-pool 2x2 -> conv \
     2x2 (2 kernels)@.";
  Format.printf "  %s@.@." (Th.Stats.to_row stats);

  (* Simulate and compare against exact integer inference. *)
  let input = Array.make circuit.Th.Circuit.num_inputs false in
  write img input;
  let r = Th.Simulator.run circuit input in
  let got = C.Inference.read_feature_map (Th.Simulator.value r) layer2 in
  let values =
    Array.init 1 (fun c ->
        Array.init 8 (fun y -> Array.init 8 (fun x -> C.Image.get img ~c ~y ~x)))
  in
  let expect =
    C.Inference.reference_conv s2 k2
      (C.Inference.reference_max_pool ~size:2
         (C.Inference.reference_relu (C.Inference.reference_conv ~bias s1 k1 values)))
  in
  Format.printf "Output feature maps (circuit | reference):@.";
  Array.iteri
    (fun k plane ->
      Format.printf "  kernel %d:@." k;
      Array.iteri
        (fun y row ->
          Format.printf "   ";
          Array.iteri
            (fun x v -> Format.printf " %4d|%-4d" v expect.(k).(y).(x))
            row;
          Format.printf "@.")
        plane)
    got;
  let ok = got = expect in
  Format.printf "@.Circuit inference matches exact inference: %b@." ok;

  (* The neuromorphic reading: per-tick spiking settles within depth. *)
  let ticks, _ = Th.Spiking.settle circuit input in
  Format.printf "Spiking network settles after %d ticks (circuit depth %d)@." ticks
    stats.Th.Stats.depth;
  let energy = Th.Energy.measure circuit [ input ] in
  Format.printf "Energy: %.0f of %d gates fire (%.1f%%)@."
    energy.Th.Energy.mean_firings energy.Th.Energy.gates
    (100. *. Th.Energy.firing_fraction energy);
  if not ok then exit 1
