(* Social-network triangle counting with the trace circuit (paper,
   Sections 2.3 and 5).

   A graph G with adjacency matrix A has trace(A^3) = 6 * (#triangles),
   so the constant-depth circuit answering "trace(A^3) >= tau?" answers
   "does G have at least tau/6 triangles?".  Repeating the query with a
   binary search recovers the exact count using O(log N) circuit
   evaluations — still constant depth per query.

   Run with: dune exec examples/triangle_count.exe *)

module F = Tcmm_fastmm
module G = Tcmm_graph
module T = Tcmm

let build_query ~schedule ~n ~tau =
  T.Trace_circuit.build ~algo:F.Instances.strassen ~schedule ~entry_bits:1
    ~tau:(6 * tau) ~n ()

let () =
  let n = 8 in
  let rng = Tcmm_util.Prng.create ~seed:11 in
  (* A community-structured graph: two dense blocks, sparse background. *)
  let g = G.Generate.blocked_community rng ~blocks:2 ~block_size:4 ~p_in:0.9 ~p_out:0.1 in
  let adj = G.Graph.adjacency g in
  Format.printf "Graph: %d vertices, %d edges, clustering coefficient %.3f@."
    (G.Graph.num_vertices g) (G.Graph.num_edges g)
    (G.Triangles.clustering_coefficient g);

  let exact = G.Triangles.count g in
  Format.printf "Exact triangle count (combinatorial reference): %d@.@." exact;

  (* Constant-depth threshold queries: Theorem 4.5 schedule with d = 2. *)
  let profile = F.Sparsity.analyze F.Instances.strassen in
  let schedule = T.Level_schedule.theorem45 ~profile ~d:2 ~n in
  Format.printf "Schedule %a -> circuit depth %d@.@." T.Level_schedule.pp schedule
    (T.Gate_model.trace_depth schedule);

  (* One query. *)
  let q = build_query ~schedule ~n ~tau:5 in
  Format.printf "Does G have at least 5 triangles?  circuit says %b@."
    (T.Trace_circuit.run q adj);
  Format.printf "Circuit size: %s@.@."
    (Tcmm_threshold.Stats.to_row (T.Trace_circuit.stats q));

  (* Binary search for the exact count; each probe is a fresh circuit
     evaluated once. *)
  let upper =
    let nv = G.Graph.num_vertices g in
    nv * (nv - 1) * (nv - 2) / 6
  in
  let probes = ref 0 in
  let rec search lo hi =
    (* Invariant: count >= lo and count < hi. *)
    if lo + 1 >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      incr probes;
      let fires = T.Trace_circuit.run (build_query ~schedule ~n ~tau:mid) adj in
      if fires then search mid hi else search lo mid
    end
  in
  let found = search 0 (upper + 1) in
  Format.printf "Binary search over thresholds: %d triangles in %d probes@." found !probes;
  Format.printf "Agrees with the reference: %b@.@." (found = exact);

  (* Alternative: one circuit with canonical value outputs gives the
     exact trace — and hence the exact count — in a single evaluation. *)
  let built, norm =
    T.Trace_circuit.build_with_value ~algo:F.Instances.strassen ~schedule
      ~entry_bits:1 ~tau:0 ~n ()
  in
  let circuit = Option.get built.T.Trace_circuit.circuit in
  let r =
    Tcmm_threshold.Simulator.run circuit (T.Trace_circuit.encode_input built adj)
  in
  let trace =
    Tcmm_arith.Repr.eval_bits
      (Tcmm_threshold.Simulator.value r)
      norm.Tcmm_arith.Binary.magnitude
  in
  Format.printf
    "Single evaluation with value outputs: trace(A^3) = %d -> %d triangles@." trace
    (trace / 6);
  if found <> exact || trace / 6 <> exact then exit 1
