(* A convolutional layer evaluated on the threshold circuit (paper,
   Section 5, after Warden's GEMM explanation).

   The im2col lowering turns "apply K kernels to every patch of an image"
   into one dense matrix product: a P x Q patch matrix times a Q x K
   kernel matrix.  Both are embedded into square power-of-two operands
   and pushed through the subcubic matmul circuit; the scores match the
   direct convolution exactly.

   Run with: dune exec examples/convnet_layer.exe *)

module F = Tcmm_fastmm
module C = Tcmm_convnet
module T = Tcmm

let () =
  let rng = Tcmm_util.Prng.create ~seed:42 in
  (* A 2-channel 4x4 image and three 2x2 kernels applied with stride 2. *)
  let img = C.Image.random rng ~channels:2 ~height:4 ~width:4 ~lo:(-2) ~hi:2 in
  let kernels =
    [|
      (* Channel-summed identity: picks the top-left pixel of each patch. *)
      C.Image.init ~channels:2 ~height:2 ~width:2 (fun _ y x ->
          if y = 0 && x = 0 then 1 else 0);
      (* Horizontal contrast. *)
      C.Image.init ~channels:2 ~height:2 ~width:2 (fun _ _ x -> if x = 0 then 1 else -1);
      (* Random kernel. *)
      C.Image.random rng ~channels:2 ~height:2 ~width:2 ~lo:(-1) ~hi:1;
    |]
  in
  let spec = { C.Im2col.q = 2; stride = 2 } in
  let oh, ow = C.Im2col.output_dims spec img in
  let patches = C.Im2col.patch_matrix spec img in
  let kmat = C.Im2col.kernel_matrix kernels in
  Format.printf
    "Layer: %d patches (%dx%d grid), %d values per patch, %d kernels@." (oh * ow) oh
    ow (F.Matrix.cols patches)
    (F.Matrix.rows (F.Matrix.transpose kmat));

  let n = C.Conv.circuit_size spec img kernels ~t_dim:2 in
  Format.printf "Embedded into a %dx%d matrix product (paper: P=%d, Q=%d, K=%d)@.@." n
    n (F.Matrix.rows patches) (F.Matrix.cols patches) (F.Matrix.cols kmat);

  let built =
    T.Matmul_circuit.build ~algo:F.Instances.strassen
      ~schedule:(T.Level_schedule.full ~l:(T.Level_schedule.height ~t_dim:2 ~n))
      ~signed_inputs:true ~entry_bits:4 ~n ()
  in
  Format.printf "Square circuit: %s@."
    (Tcmm_threshold.Stats.to_row (T.Matmul_circuit.stats built));

  (* The tiled multiplier only pays for the tiles the rectangular
     operands actually cover (paper, Section 5's splitting remark). *)
  let block = 4 in
  let pr = T.Tiled_matmul.round_up (F.Matrix.rows patches) ~block in
  let qr = T.Tiled_matmul.round_up (F.Matrix.cols patches) ~block in
  let kr = T.Tiled_matmul.round_up (F.Matrix.cols kmat) ~block in
  let tiled =
    T.Tiled_matmul.build ~algo:F.Instances.strassen
      ~schedule:(T.Level_schedule.full ~l:2) ~signed_inputs:true ~entry_bits:4
      ~rows:pr ~inner:qr ~cols:kr ()
  in
  Format.printf "Tiled circuit (%dx%dx%d, block %d): %s@.@." pr qr kr block
    (Tcmm_threshold.Stats.to_row (T.Tiled_matmul.stats tiled));
  let at = C.Im2col.embed patches ~n:(max pr qr) in
  let at = F.Matrix.sub_block at ~row:0 ~col:0 ~rows:pr ~cols:qr in
  let bt = C.Im2col.embed kmat ~n:(max qr kr) in
  let bt = F.Matrix.sub_block bt ~row:0 ~col:0 ~rows:qr ~cols:kr in
  let tiled_product = T.Tiled_matmul.run tiled ~a:at ~b:bt in

  let a = C.Im2col.embed patches ~n and b = C.Im2col.embed kmat ~n in
  let product = T.Matmul_circuit.run built ~a ~b in
  (* Both circuits must agree on the live region. *)
  let agree = ref true in
  for i = 0 to F.Matrix.rows patches - 1 do
    for j = 0 to F.Matrix.cols kmat - 1 do
      if F.Matrix.get product i j <> F.Matrix.get tiled_product i j then agree := false
    done
  done;
  Format.printf "Square and tiled circuits agree: %b@.@." !agree;
  let direct = C.Conv.direct spec img kernels in
  let mismatches = ref 0 in
  Array.iteri
    (fun k plane ->
      Format.printf "Kernel %d scores (circuit | direct):@." k;
      Array.iteri
        (fun py row ->
          Array.iteri
            (fun px expect ->
              let got = F.Matrix.get product ((py * ow) + px) k in
              if got <> expect then incr mismatches;
              Format.printf " %4d|%-4d" got expect)
            row;
          ignore py;
          Format.printf "@.")
        plane;
      Format.printf "@.")
    direct;
  Format.printf "Mismatches: %d@." !mismatches;
  if !mismatches > 0 then exit 1
