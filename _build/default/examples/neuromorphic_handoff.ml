(* The neuromorphic hand-off: serialize a circuit, reload it, and run it
   under spiking (per-tick synchronous) semantics.

   The paper's motivation is hardware whose neurons all update once per
   tick (TrueNorth, SpiNNaker, Loihi).  This example builds a
   constant-depth triangle-threshold circuit, writes it out as a plain
   netlist (the hand-off artifact an external toolchain would consume),
   parses it back, and drives the reloaded circuit as a spiking network:
   the answer appears after exactly depth ticks and stays fixed — the
   concrete meaning of "constant-depth circuit = constant-time
   neuromorphic algorithm".

   Run with: dune exec examples/neuromorphic_handoff.exe *)

module F = Tcmm_fastmm
module G = Tcmm_graph
module T = Tcmm
module Th = Tcmm_threshold

let () =
  let n = 8 in
  let rng = Tcmm_util.Prng.create ~seed:21 in
  let g = G.Generate.erdos_renyi rng ~n ~p:0.5 in
  let triangles = G.Triangles.count g in
  Format.printf "Graph: ER(%d, 0.5) with %d edges and %d triangles@." n
    (G.Graph.num_edges g) triangles;

  (* Ask: at least `triangles` triangles? (boundary case: must fire). *)
  let profile = F.Sparsity.analyze F.Instances.strassen in
  let schedule = T.Level_schedule.theorem45 ~profile ~d:2 ~n in
  let built =
    T.Trace_circuit.build ~algo:F.Instances.strassen ~schedule ~entry_bits:1
      ~tau:(6 * triangles) ~n ()
  in
  let circuit = Option.get built.T.Trace_circuit.circuit in
  Format.printf "Circuit: %s@." (Th.Stats.to_row (Th.Circuit.stats circuit));

  (* Serialize and reload — the netlist is the hardware hand-off format. *)
  let netlist = Th.Export.to_netlist circuit in
  let path = Filename.temp_file "tcmm" ".netlist" in
  Th.Export.write_file path netlist;
  Format.printf "Netlist: %d bytes written to %s@." (String.length netlist) path;
  let reloaded = Th.Export.of_netlist netlist in
  Format.printf "Reloaded: %d gates, %d inputs@."
    (Th.Circuit.num_gates reloaded)
    reloaded.Th.Circuit.num_inputs;

  (* Drive the reloaded circuit as a spiking network. *)
  let input = T.Trace_circuit.encode_input built (G.Graph.adjacency g) in
  let st = Th.Spiking.init reloaded input in
  let depth = (Th.Circuit.stats reloaded).Th.Stats.depth in
  Format.printf "@.Spiking run (depth %d):@." depth;
  for tick = 1 to depth + 1 do
    Th.Spiking.tick st;
    Format.printf "  tick %d: output = %b@." tick (Th.Spiking.outputs st).(0)
  done;
  let ticks, outputs = Th.Spiking.settle reloaded input in
  let reference = Th.Simulator.read_outputs circuit input in
  Format.printf "@.Settled after %d ticks; output %b (DAG semantics: %b)@." ticks
    outputs.(0) reference.(0);
  Format.printf "Answer: G has at least %d triangles -> %b (truth: true)@." triangles
    outputs.(0);
  Sys.remove path;
  if outputs <> reference || not outputs.(0) then exit 1
