(* Explore the gate-count/depth tradeoff that drives the paper.

   For a range of matrix sizes and level schedules, compute the trace
   circuit's exact gate count (via the Gate_count dynamic program — no
   circuit is built, so this sweeps to N = 256 instantly) and tabulate
   against the naive Theta(N^3) baseline from the paper's introduction.

   Run with: dune exec examples/schedule_explorer.exe *)

module F = Tcmm_fastmm
module T = Tcmm
module Tb = Tcmm_util.Tablefmt

let () =
  let algo = F.Instances.strassen in
  let profile = F.Sparsity.analyze algo in
  Format.printf
    "Strassen: omega = %.3f, gamma = %.3f, c = %.3f; Theorem 4.5 exponent omega + \
     c*gamma^d:@."
    profile.F.Sparsity.omega profile.F.Sparsity.overall.F.Sparsity.gamma
    profile.F.Sparsity.c_const;
  List.iter
    (fun d -> Format.printf "  d = %d -> N^%.3f@." d (T.Gate_model.exponent profile ~d))
    [ 1; 2; 3; 4; 6 ];
  Format.printf "@.";

  let rows = ref [] in
  List.iter
    (fun n ->
      let l = T.Level_schedule.height ~t_dim:2 ~n in
      let schedules =
        [
          ("naive (Sec. 1)", None);
          ("direct", Some (T.Level_schedule.direct ~l));
          ("thm4.5 d=2", Some (T.Level_schedule.theorem45 ~profile ~d:2 ~n));
          ("thm4.5 d=3", Some (T.Level_schedule.theorem45 ~profile ~d:3 ~n));
          ( "thm4.4",
            Some
              (T.Level_schedule.theorem44
                 ~gamma:profile.F.Sparsity.overall.F.Sparsity.gamma ~t_dim:2 ~n) );
          ("full", Some (T.Level_schedule.full ~l));
        ]
      in
      List.iter
        (fun (name, schedule) ->
          let gates, depth =
            match schedule with
            | None -> (fst (T.Naive_circuits.trace_counts ~entry_bits:1 ~n ()), 2)
            | Some schedule ->
                ( (T.Gate_count.trace ~algo ~schedule ~entry_bits:1 ~n ()).T.Gate_count.gates,
                  T.Gate_model.trace_depth schedule )
          in
          rows := [ Tb.Int n; Tb.Str name; Tb.Int gates; Tb.Int depth ] :: !rows)
        schedules)
    [ 8; 16; 32; 64; 128; 256 ];
  Tb.print
    ~title:
      "trace(A^3) >= tau circuits: exact gate counts (analytic DP, binary entries)"
    ~header:[ "N"; "schedule"; "gates"; "depth" ]
    ~rows:(List.rev !rows);

  (* One concrete build shows the remaining structural measures. *)
  let schedule = T.Level_schedule.theorem45 ~profile ~d:2 ~n:16 in
  let built =
    T.Trace_circuit.build ~mode:Tcmm_threshold.Builder.Count_only ~algo ~schedule
      ~entry_bits:1 ~tau:1 ~n:16 ()
  in
  Format.printf "reference build at N=16, d=2: %s@."
    (Tcmm_threshold.Stats.to_row (T.Trace_circuit.stats built))
