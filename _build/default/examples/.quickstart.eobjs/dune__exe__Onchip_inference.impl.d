examples/onchip_inference.ml: Array Format Tcmm_arith Tcmm_convnet Tcmm_threshold Tcmm_util
