examples/onchip_inference.mli:
