examples/neuromorphic_handoff.ml: Array Filename Format Option String Sys Tcmm Tcmm_fastmm Tcmm_graph Tcmm_threshold Tcmm_util
