examples/convnet_layer.mli:
