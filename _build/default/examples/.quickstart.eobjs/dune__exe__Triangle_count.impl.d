examples/triangle_count.ml: Format Option Tcmm Tcmm_arith Tcmm_fastmm Tcmm_graph Tcmm_threshold Tcmm_util
