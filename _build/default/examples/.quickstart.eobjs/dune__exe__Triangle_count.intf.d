examples/triangle_count.mli:
