examples/quickstart.ml: Format Tcmm Tcmm_fastmm Tcmm_threshold
