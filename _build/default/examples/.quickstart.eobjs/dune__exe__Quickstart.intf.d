examples/quickstart.mli:
