examples/neuromorphic_handoff.mli:
