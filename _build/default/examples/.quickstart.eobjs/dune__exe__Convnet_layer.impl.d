examples/convnet_layer.ml: Array Format Tcmm Tcmm_convnet Tcmm_fastmm Tcmm_threshold Tcmm_util
