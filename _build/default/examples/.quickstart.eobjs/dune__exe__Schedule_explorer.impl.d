examples/schedule_explorer.ml: Format List Tcmm Tcmm_fastmm Tcmm_threshold Tcmm_util
