(* Quickstart: compile Strassen's algorithm into a constant-depth threshold
   circuit, multiply two integer matrices with it, and inspect the
   circuit's complexity measures.

   Run with: dune exec examples/quickstart.exe *)

module F = Tcmm_fastmm
module T = Tcmm

let () =
  let n = 4 in
  let algo = F.Instances.strassen in
  Format.printf "The fast matrix multiplication algorithm (paper, Figure 1):@.%a@."
    F.Bilinear.pp algo;

  (* A level schedule decides which levels of the recursion tree the
     circuit materializes; [full] uses every level (depth grows with N),
     Theorem 4.5 schedules give constant depth. *)
  let schedule = T.Level_schedule.full ~l:(T.Level_schedule.height ~t_dim:2 ~n) in
  Format.printf "Level schedule: %a@.@." T.Level_schedule.pp schedule;

  (* Build the circuit: n x n operands, 3-bit signed entries. *)
  let built =
    T.Matmul_circuit.build ~algo ~schedule ~signed_inputs:true ~entry_bits:3 ~n ()
  in
  let stats = T.Matmul_circuit.stats built in
  Format.printf "Circuit: %s@.@." (Tcmm_threshold.Stats.to_row stats);

  (* Multiply two concrete matrices by simulating the circuit. *)
  let a =
    F.Matrix.of_rows
      [| [| 1; -2; 3; 0 |]; [| 0; 4; -1; 2 |]; [| 5; 0; 0; -3 |]; [| 1; 1; 1; 1 |] |]
  in
  let b =
    F.Matrix.of_rows
      [| [| 2; 0; 1; -1 |]; [| 1; 3; 0; 0 |]; [| 0; -2; 2; 4 |]; [| -1; 0; 0; 2 |] |]
  in
  let c = T.Matmul_circuit.run built ~a ~b in
  Format.printf "A =@.%a@.B =@.%a@." F.Matrix.pp a F.Matrix.pp b;
  Format.printf "C = A*B (computed by the threshold circuit) =@.%a@." F.Matrix.pp c;
  let ok = F.Matrix.equal c (F.Matrix.mul a b) in
  Format.printf "@.Matches the integer reference: %b@." ok;
  if not ok then exit 1
