bench/experiments.ml: Array Bench_util Format List Printf String Tcmm Tcmm_convnet Tcmm_fastmm Tcmm_graph Tcmm_threshold Tcmm_util
