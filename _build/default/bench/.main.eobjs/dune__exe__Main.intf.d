bench/main.mli:
