bench/bench_util.ml: Analyze Bechamel Benchmark Float Hashtbl List Measure Printf Tcmm_util Test Time Toolkit
