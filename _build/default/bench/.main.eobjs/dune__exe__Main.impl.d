bench/main.ml: Array Bechamel Bench_util Experiments Gc List Printf Staged String Sys Tcmm Tcmm_fastmm Tcmm_threshold Tcmm_util Test
