(* Shared helpers for the benchmark harness. *)

module Tb = Tcmm_util.Tablefmt

(* Wall-clock measurement through bechamel: returns (name, ns/run) for
   each test, via OLS against the run counter. *)
let measure_ns tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"bench" tests) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      (name, estimate) :: acc)
    results []
  |> List.sort compare

let ns_cell ns =
  if Float.is_nan ns then Tb.Str "n/a"
  else if ns >= 1e9 then Tb.Str (Printf.sprintf "%.2f s" (ns /. 1e9))
  else if ns >= 1e6 then Tb.Str (Printf.sprintf "%.2f ms" (ns /. 1e6))
  else if ns >= 1e3 then Tb.Str (Printf.sprintf "%.2f us" (ns /. 1e3))
  else Tb.Str (Printf.sprintf "%.0f ns" ns)

let header title =
  Printf.printf "\n######## %s ########\n\n%!" title
