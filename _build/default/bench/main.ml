(* Benchmark harness: regenerates every experiment table (E1..E10, see
   EXPERIMENTS.md) and runs the bechamel wall-clock benches (E8).

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e2 e4   # selected tables only *)

module F = Tcmm_fastmm
module T = Tcmm
module Tb = Tcmm_util.Tablefmt

(* E8: wall-clock timings via bechamel. *)
let e8 () =
  Bench_util.header "E8: wall-clock benches (bechamel, ns/run via OLS)";
  let rng = Tcmm_util.Prng.create ~seed:7 in
  let n = 128 in
  let a = F.Matrix.random rng ~rows:n ~cols:n ~lo:(-8) ~hi:8 in
  let b = F.Matrix.random rng ~rows:n ~cols:n ~lo:(-8) ~hi:8 in
  let profile = F.Sparsity.analyze F.Instances.strassen in
  let sched16 = T.Level_schedule.theorem45 ~profile ~d:2 ~n:16 in
  let built =
    T.Matmul_circuit.build ~algo:F.Instances.strassen ~schedule:sched16 ~entry_bits:1
      ~n:16 ()
  in
  let a16 = F.Matrix.random rng ~rows:16 ~cols:16 ~lo:0 ~hi:1 in
  let b16 = F.Matrix.random rng ~rows:16 ~cols:16 ~lo:0 ~hi:1 in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"cpu naive matmul N=128" (Staged.stage (fun () -> F.Matrix.mul a b));
      Test.make ~name:"cpu strassen N=128 (cutoff 32)"
        (Staged.stage (fun () -> F.Bilinear.multiply ~cutoff:32 F.Instances.strassen a b));
      Test.make ~name:"cpu strassen N=128 (cutoff 8)"
        (Staged.stage (fun () -> F.Bilinear.multiply ~cutoff:8 F.Instances.strassen a b));
      Test.make ~name:"build matmul circuit N=16 d=2"
        (Staged.stage (fun () ->
             T.Matmul_circuit.build ~mode:Tcmm_threshold.Builder.Count_only
               ~algo:F.Instances.strassen ~schedule:sched16 ~entry_bits:1 ~n:16 ()));
      Test.make ~name:"simulate matmul circuit N=16"
        (Staged.stage (fun () -> T.Matmul_circuit.run built ~a:a16 ~b:b16));
      Test.make ~name:"exact counts via DP (trace N=1024 d=3)"
        (Staged.stage (fun () ->
             T.Gate_count.trace ~algo:F.Instances.strassen
               ~schedule:(T.Level_schedule.theorem45 ~profile ~d:3 ~n:1024)
               ~entry_bits:10 ~n:1024 ()));
    ]
  in
  let rows =
    List.map
      (fun (name, ns) -> [ Tb.Str name; Bench_util.ns_cell ns ])
      (Bench_util.measure_ns tests)
  in
  Tb.print ~title:"wall-clock (one core)" ~header:[ "bench"; "time/run" ] ~rows;
  (* Scalar-multiplication counts contextualize the CPU crossover. *)
  let rows =
    List.map
      (fun n ->
        [
          Tb.Int n;
          Tb.Int (n * n * n);
          Tb.Int (F.Bilinear.scalar_multiplications F.Instances.strassen ~n ~cutoff:8);
          Tb.Int (F.Bilinear.scalar_multiplications F.Instances.strassen ~n ~cutoff:1);
        ])
      [ 32; 64; 128; 256; 512 ]
  in
  Tb.print ~title:"scalar multiplications: naive vs recursive Strassen"
    ~header:[ "N"; "naive N^3"; "strassen cutoff 8"; "strassen cutoff 1" ]
    ~rows

let all_experiments =
  [
    ("e1", Experiments.e1);
    ("e2", Experiments.e2);
    ("e3", Experiments.e3);
    ("e4", Experiments.e4);
    ("e5", Experiments.e5);
    ("e6", Experiments.e6);
    ("e7", Experiments.e7);
    ("e8", e8);
    ("e9", Experiments.e9);
    ("e10", Experiments.e10);
    ("e11", Experiments.e11);
    ("e12", Experiments.e12);
    ("e13", Experiments.e13);
    ("e14", Experiments.e14);
    ("e15", Experiments.e15);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all_experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all_experiments with
      | Some f ->
          f ();
          (* Large count-only builds leave big heaps behind; return the
             memory before the next experiment. *)
          Gc.compact ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst all_experiments));
          exit 2)
    requested;
  print_endline "done."
