let group_size ~n ~stages =
  if n <= 1 then 1
  else begin
    (* Smallest g with g^stages >= n, found by search (n is small). *)
    let rec pow g e = if e = 0 then 1 else g * pow g (e - 1) in
    let rec find g = if pow g stages >= n then g else find (g + 1) in
    find 2
  end

let rec chunks k = function
  | [] -> []
  | xs ->
      let rec take acc n = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (x :: acc) (n - 1) rest
      in
      let chunk, rest = take [] k xs in
      chunk :: chunks k rest

let signed_sum b ~stages terms =
  if stages < 1 then invalid_arg "Staged_sum.signed_sum: stages < 1";
  let rec go rounds terms =
    let n = List.length terms in
    if rounds = 1 || n <= 1 then Weighted_sum.signed_sum b terms
    else begin
      let g = group_size ~n ~stages:rounds in
      let partials =
        List.map
          (fun chunk ->
            let sb = Weighted_sum.signed_sum b chunk in
            (1, Repr.signed_of_sbits sb))
          (chunks g terms)
      in
      go (rounds - 1) partials
    end
  in
  go stages terms
