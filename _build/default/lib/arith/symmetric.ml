open Tcmm_threshold

let unit_terms inputs = Array.to_list (Array.map (fun w -> (w, 1)) inputs)

let popcount b inputs =
  Weighted_sum.to_bits b (Repr.unsigned_of_terms (unit_terms inputs))

let at_least b ~k inputs =
  Builder.add_gate_terms b ~terms:(unit_terms inputs) ~threshold:k

let majority b inputs = at_least b ~k:((Array.length inputs + 2) / 2) inputs

let in_interval b ~lo ~hi inputs =
  if lo > hi then invalid_arg "Symmetric.in_interval: lo > hi";
  let ge_lo = at_least b ~k:lo inputs in
  let gt_hi = at_least b ~k:(hi + 1) inputs in
  Builder.add_gate b ~inputs:[| ge_lo; gt_hi |] ~weights:[| 1; -1 |] ~threshold:1

let exactly b ~k inputs = in_interval b ~lo:k ~hi:k inputs

let symmetric b ~f inputs =
  let n = Array.length inputs in
  (* Muroga: express f(popcount) as an alternating sum of indicator gates
     (popcount >= boundary), one per value change of f. *)
  let terms = ref [] in
  let prev = ref (f 0) in
  for k = 1 to n do
    let cur = f k in
    if cur <> !prev then begin
      let gate = at_least b ~k inputs in
      terms := (gate, if cur then 1 else -1) :: !terms;
      prev := cur
    end
  done;
  let base = if f 0 then 1 else 0 in
  (* Output fires iff base + sum of alternating indicators >= 1. *)
  Builder.add_gate_terms b ~terms:(List.rev !terms) ~threshold:(1 - base)

let parity b inputs = symmetric b ~f:(fun k -> k land 1 = 1) inputs
