lib/arith/repr.mli: Tcmm_threshold Wire
