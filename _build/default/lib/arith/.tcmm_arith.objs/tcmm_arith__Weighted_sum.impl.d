lib/arith/weighted_sum.ml: Array Builder Fun Hashtbl List Msb Repr Tcmm_threshold Tcmm_util
