lib/arith/staged_sum.ml: List Repr Weighted_sum
