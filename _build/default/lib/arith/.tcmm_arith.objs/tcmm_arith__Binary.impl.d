lib/arith/binary.ml: Array Builder Fun List Msb Repr Tcmm_threshold Weighted_sum Wire
