lib/arith/binary.mli: Builder Repr Tcmm_threshold Wire
