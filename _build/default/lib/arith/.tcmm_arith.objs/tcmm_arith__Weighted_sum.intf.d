lib/arith/weighted_sum.mli: Builder Repr Tcmm_threshold
