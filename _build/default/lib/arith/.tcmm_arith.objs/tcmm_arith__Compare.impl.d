lib/arith/compare.ml: Array Builder Hashtbl List Repr Tcmm_threshold Tcmm_util
