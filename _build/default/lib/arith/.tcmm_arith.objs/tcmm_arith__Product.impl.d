lib/arith/product.ml: Array Builder List Repr Tcmm_threshold Tcmm_util
