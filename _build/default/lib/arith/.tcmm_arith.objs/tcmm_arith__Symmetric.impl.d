lib/arith/symmetric.ml: Array Builder List Repr Tcmm_threshold Weighted_sum
