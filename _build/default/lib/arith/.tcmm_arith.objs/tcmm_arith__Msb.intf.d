lib/arith/msb.mli: Builder Tcmm_threshold Wire
