lib/arith/staged_sum.mli: Builder Repr Tcmm_threshold
