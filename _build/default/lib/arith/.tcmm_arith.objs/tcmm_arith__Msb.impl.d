lib/arith/msb.ml: Array Builder List Tcmm_threshold
