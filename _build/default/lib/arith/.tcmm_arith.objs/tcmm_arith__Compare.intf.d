lib/arith/compare.mli: Builder Repr Tcmm_threshold Wire
