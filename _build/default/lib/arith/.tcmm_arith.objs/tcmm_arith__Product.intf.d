lib/arith/product.mli: Builder Repr Tcmm_threshold
