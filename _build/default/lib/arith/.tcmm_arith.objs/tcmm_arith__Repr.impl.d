lib/arith/repr.ml: Array List Tcmm_threshold Tcmm_util Wire
