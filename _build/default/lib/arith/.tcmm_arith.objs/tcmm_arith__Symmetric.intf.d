lib/arith/symmetric.mli: Builder Repr Tcmm_threshold Wire
