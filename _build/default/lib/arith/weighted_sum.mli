(** Lemma 3.2: all bits of an integer-weighted sum, in depth 2.

    This is the workhorse of the whole construction ("the bulk of the
    computation performed by our circuits", Section 3).  Given a
    nonnegative representation [s = sum_i w_i x_i], the circuit computes
    the binary expansion of [s].  Bit [j] (1-indexed from the LSB) is
    obtained by applying Lemma 3.1 to the truncated sum [s_j] that keeps
    only the terms whose weight is not divisible by [2^j]: the dropped
    terms are multiples of [2^j], so [s_j = s (mod 2^j)], while the kept
    terms give an exact bound on [s_j] that sizes the Lemma 3.1 instance.

    For binary inputs this is exactly the paper's [O(w*b*n)]-gate circuit;
    for general representations (products from Lemma 3.3) the gate count
    picks up the representation's term count, matching the paper's remark
    that representations of size polynomial in [bits x] suffice. *)

open Tcmm_threshold

val to_bits : ?share_top:bool -> Builder.t -> Repr.unsigned -> Repr.bits
(** [to_bits b u] returns the binary expansion of the value of [u]
    (little-endian, [Tcmm_util.Ilog.bits u.bound] wires).  Emits no gates
    when [u] already is binary ({!Repr.is_binary}).  Duplicate wires in
    [u] are merged before any gate is emitted.  Depth 2.

    [share_top] (default [false]) enables the optimization the paper
    notes at the end of Lemma 3.2's proof: the bits above every weight's
    2-adic valuation all use the {e untruncated} sum, so one first layer
    (the finest threshold grid) serves them all, roughly halving the
    gates and edges spent on the most significant bits.  Both settings
    compute the same function. *)

val unsigned_sum : ?share_top:bool -> Builder.t -> (int * Repr.unsigned) list -> Repr.bits
(** [unsigned_sum b terms] is [to_bits] of [sum_i c_i * u_i]; every scale
    [c_i] must be positive. *)

val signed_sum :
  ?share_top:bool -> Builder.t -> (int * Repr.signed) list -> Repr.signed_bits
(** [signed_sum b terms] computes [sum_i c_i * s_i] for arbitrary integer
    scales [c_i], as the paper's Section 3 "Negative numbers" scheme: the
    positively-contributing and negatively-contributing parts are routed
    into two parallel {!to_bits} instances, so the result is a signed
    binary pair of depth 2. *)

val to_bits_cost : ?share_top:bool -> (int * int) list -> int * int
(** [to_bits_cost multiset] is the exact [(gates, edges)] that {!to_bits}
    emits on a representation whose {e merged} weight multiset is given as
    [(weight, multiplicity)] pairs (weights positive, already merged —
    multiplicities count distinct wires sharing a weight).  This mirrors
    the construction arithmetically, so large-circuit statistics can be
    computed without building anything; the test suite checks it against
    count-only builds gate-for-gate.  [share_top] must match the
    construction being mirrored. *)

val gate_cost_binary : n:int -> w:int -> b:int -> int
(** Closed-form gate count of the textbook instance: [n] binary summands
    of [b] bits with weight magnitudes at most [w] (used by the analytic
    model to cross-check measured counts). *)
