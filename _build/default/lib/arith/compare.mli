(** Final-layer comparisons.

    A signed representation feeds a single threshold gate directly: the
    positive part keeps its weights, the negative part's weights are
    negated.  This is how the trace circuit's output gate tests
    [trace(A^3) >= tau] (Theorem 4.4's "final output gate"). *)

open Tcmm_threshold

val ge : Builder.t -> Repr.signed -> int -> Wire.t
(** [ge b s c]: one gate firing iff [value s >= c].  Depth 1.
    Duplicate wires across the two parts are merged (weights subtract). *)

val terms_of_signed : Repr.signed -> (Wire.t * int) list
(** The merged (wire, weight) list [ge] feeds to its gate; exposed for
    constructions that fold a comparison into a larger gate. *)
