(** Symmetric boolean functions in TC0 (Muroga's classical technique).

    The paper's introduction cites the depth-2 threshold circuits for
    symmetric functions — functions of the number of true inputs —
    rooted in Muroga (1959) and generalized by Siu et al.; Lemma 3.1 is
    exactly this technique.  This module packages the standard
    instances: any symmetric function costs at most [n + 1] first-layer
    gates plus one output gate, and the specific functions below cost
    less.

    All circuits have depth at most 2. *)

open Tcmm_threshold

val parity : Builder.t -> Wire.t array -> Wire.t
(** XOR of all inputs: the least significant bit of the popcount
    (depth 2, [O(n)] gates — the intro's "sublinear size" refinement for
    parity is Siu et al.'s block technique; this is the classical
    version). *)

val majority : Builder.t -> Wire.t array -> Wire.t
(** 1 iff at least [ceil((n+1)/2)] inputs are 1.  One gate. *)

val exactly : Builder.t -> k:int -> Wire.t array -> Wire.t
(** 1 iff exactly [k] inputs are 1.  Three gates, depth 2. *)

val at_least : Builder.t -> k:int -> Wire.t array -> Wire.t
(** 1 iff at least [k] inputs are 1.  One gate. *)

val in_interval : Builder.t -> lo:int -> hi:int -> Wire.t array -> Wire.t
(** 1 iff the popcount lies in [\[lo, hi\]].  Three gates, depth 2. *)

val symmetric : Builder.t -> f:(int -> bool) -> Wire.t array -> Wire.t
(** Arbitrary symmetric function given by its value on each popcount
    [0..n]: Muroga's construction — one threshold gate per boundary
    where [f] changes value, one output gate. *)

val popcount : Builder.t -> Wire.t array -> Repr.bits
(** The binary count of true inputs (Lemma 3.2 on unit weights). *)
