(** Canonical binary arithmetic: two-operand addition, subtraction and
    sign-magnitude normalization.

    The main circuits carry numbers as non-canonical [pos - neg] pairs
    (Section 3's convention), which is exactly right {e inside} the
    computation, but a consumer of the circuit's outputs — a host CPU, a
    downstream neural stage — often wants a unique encoding.  This module
    supplies the classical TC0 pieces: a depth-3 carry-lookahead adder
    (each carry is a single threshold gate over a prefix of the operand
    bits), the complement-based subtractor, and {!normalize}, which turns
    a signed pair into a sign bit plus true magnitude bits. *)

open Tcmm_threshold

val add : Builder.t -> Repr.bits -> Repr.bits -> Repr.bits
(** [add b x y]: the [max(|x|,|y|) + 1]-bit sum of two binary numbers.
    Depth 3: carries (one gate each, depth 1), then each sum bit is the
    parity of [x_j, y_j, carry_j] (depth 2). *)

val sub : Builder.t -> Repr.bits -> Repr.bits -> Repr.bits
(** [sub b x y]: the binary difference [x - y], {b assuming} [x >= y]
    (two's-complement: [x + ~y + 1] with the carry out of the top
    dropped).  Output width [max(|x|,|y|)].  If [x < y] the output is the
    wrap-around residue mod [2^width]. *)

val geq : Builder.t -> Repr.bits -> Repr.bits -> Wire.t
(** One gate: [x >= y]. *)

val mux : Builder.t -> sel:Wire.t -> if_true:Repr.bits -> if_false:Repr.bits -> Repr.bits
(** Bitwise select (depth 2: AND pair + OR).  Widths are padded to the
    longer operand; missing bits select against constant 0 (no gate
    needed for the absent side). *)

type normalized = {
  sign_negative : Wire.t;  (** 1 iff the value is strictly negative *)
  magnitude : Repr.bits;
}

val normalize : Builder.t -> Repr.signed -> normalized
(** Sign-magnitude canonical form of a signed representation:
    [value = (-1)^sign * magnitude], with [magnitude = |value|].
    Depth at most 7 (two Lemma 3.2 layers, comparison, subtract both
    ways, select). *)
