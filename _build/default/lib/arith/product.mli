(** Lemma 3.3: depth-1 product representations.

    The product of two (or three) binary numbers is not expanded to binary;
    instead a single layer of AND gates produces a {i representation}
    (Section 3): [x * y = sum_{i,j} 2^(i+j) x_i y_j], one gate per bit
    pair, each feeding downstream threshold gates with weight [2^(i+j)].
    Signed operands use the eightfold (fourfold for two operands) sign
    expansion described under "Negative numbers". *)

open Tcmm_threshold

val product2 : Builder.t -> Repr.bits -> Repr.bits -> Repr.unsigned
(** [m1 * m2] AND gates, depth 1. *)

val product3 : Builder.t -> Repr.bits -> Repr.bits -> Repr.bits -> Repr.unsigned
(** [m1 * m2 * m3] AND gates, depth 1 (the paper's [m^3] bound). *)

val signed_product2 : Builder.t -> Repr.signed_bits -> Repr.signed_bits -> Repr.signed
(** [(x+ - x-) * (y+ - y-)] via four {!product2} instances. *)

val signed_product3 :
  Builder.t -> Repr.signed_bits -> Repr.signed_bits -> Repr.signed_bits -> Repr.signed
(** Eight {!product3} instances, still [O(m^3)] gates, depth 1. *)
