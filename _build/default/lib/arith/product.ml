open Tcmm_threshold
module Checked = Tcmm_util.Checked

let product2 b (x : Repr.bits) (y : Repr.bits) =
  let terms = ref [] in
  Array.iteri
    (fun i xi ->
      Array.iteri
        (fun j yj ->
          let wire =
            Builder.add_gate b ~inputs:[| xi; yj |] ~weights:[| 1; 1 |] ~threshold:2
          in
          terms := (wire, Checked.pow 2 (i + j)) :: !terms)
        y)
    x;
  Repr.unsigned_of_terms (List.rev !terms)

let product3 b (x : Repr.bits) (y : Repr.bits) (z : Repr.bits) =
  let terms = ref [] in
  Array.iteri
    (fun i xi ->
      Array.iteri
        (fun j yj ->
          Array.iteri
            (fun k zk ->
              let wire =
                Builder.add_gate b ~inputs:[| xi; yj; zk |] ~weights:[| 1; 1; 1 |]
                  ~threshold:3
              in
              terms := (wire, Checked.pow 2 (i + j + k)) :: !terms)
            z)
        y)
    x;
  Repr.unsigned_of_terms (List.rev !terms)

let signed_product2 b (x : Repr.signed_bits) (y : Repr.signed_bits) =
  let xp = x.Repr.pos_bits and xn = x.Repr.neg_bits in
  let yp = y.Repr.pos_bits and yn = y.Repr.neg_bits in
  {
    Repr.pos = Repr.concat_unsigned [ product2 b xp yp; product2 b xn yn ];
    neg = Repr.concat_unsigned [ product2 b xp yn; product2 b xn yp ];
  }

let signed_product3 b (x : Repr.signed_bits) (y : Repr.signed_bits)
    (z : Repr.signed_bits) =
  let xp = x.Repr.pos_bits and xn = x.Repr.neg_bits in
  let yp = y.Repr.pos_bits and yn = y.Repr.neg_bits in
  let zp = z.Repr.pos_bits and zn = z.Repr.neg_bits in
  (* A sign combination contributes positively iff it has an even number of
     negative parts. *)
  {
    Repr.pos =
      Repr.concat_unsigned
        [
          product3 b xp yp zp;
          product3 b xp yn zn;
          product3 b xn yp zn;
          product3 b xn yn zp;
        ];
    neg =
      Repr.concat_unsigned
        [
          product3 b xp yp zn;
          product3 b xp yn zp;
          product3 b xn yp zp;
          product3 b xn yn zn;
        ];
  }
