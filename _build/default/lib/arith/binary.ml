open Tcmm_threshold

let bit bits j = if j < Array.length bits then Some bits.(j) else None

(* Parity of up to three wires plus a constant offset, via Lemma 3.1 on
   the 2-bit sum: bit 0 of (sum + offset). *)
let parity3 ?(offset = 0) b wires =
  let terms = List.map (fun w -> (w, 1)) wires in
  (* sum + offset <= 3 + offset < 8 for offset <= 4. *)
  Msb.kth_msb ~offset b ~terms ~l:3 ~k:3

let add b x y =
  let width = max (Array.length x) (Array.length y) in
  if width = 0 then [||]
  else begin
    (* carry_j = [ sum of the low j bits of both operands >= 2^j ]. *)
    let carry j =
      if j = 0 then None
      else begin
        let terms = ref [] in
        for i = j - 1 downto 0 do
          (match bit x i with Some w -> terms := (w, 1 lsl i) :: !terms | None -> ());
          match bit y i with Some w -> terms := (w, 1 lsl i) :: !terms | None -> ()
        done;
        if !terms = [] then None
        else Some (Builder.add_gate_terms b ~terms:!terms ~threshold:(1 lsl j))
      end
    in
    Array.init (width + 1) (fun j ->
        let inputs =
          List.filter_map Fun.id [ bit x j; bit y j; carry j ]
        in
        match inputs with
        | [] -> Builder.const b false
        | [ w ] -> w
        | ws -> parity3 b ws)
  end

let sub b x y =
  let width = max (Array.length x) (Array.length y) in
  if width = 0 then [||]
  else begin
    (* x - y = x + ~y + 1 (mod 2^width); absent y bits complement to 1.
       carry_j = [ sum_{i<j} (x_i + ~y_i) 2^i + 1 >= 2^j ]
               = [ sum_{i<j} (x_i - y_i) 2^i >= 0 ]. *)
    let carry j =
      if j = 0 then None
      else begin
        let terms = ref [] in
        for i = j - 1 downto 0 do
          (match bit x i with Some w -> terms := (w, 1 lsl i) :: !terms | None -> ());
          match bit y i with Some w -> terms := (w, -(1 lsl i)) :: !terms | None -> ()
        done;
        if !terms = [] then None (* all-zero prefix: carry always 1... *)
        else Some (Builder.add_gate_terms b ~terms:!terms ~threshold:0)
      end
    in
    Array.init width (fun j ->
        (* sum bit = parity(x_j + (1 - y_j) + carry_j), where carry_0 is
           the +1 of the complement scheme and an absent carry gate means
           the prefix sum is identically 0, i.e. carry = 1. *)
        let wires = ref [] and offset = ref 0 in
        (match bit x j with Some w -> wires := w :: !wires | None -> ());
        (match bit y j with
        | Some w ->
            wires := w :: !wires;
            incr offset
            (* contributes (1 - y_j): constant 1 and weight -1 handled as
               parity is invariant mod 2: (1 - y_j) == (1 + y_j) mod 2. *)
        | None -> incr offset);
        (match carry j with
        | Some w -> wires := w :: !wires
        | None -> incr offset (* carry identically 1 *));
        match (!wires, !offset land 1) with
        | [], 0 -> Builder.const b false
        | [], 1 -> Builder.const b true
        | [ w ], 0 -> w
        | ws, off -> parity3 ~offset:off b ws)
  end

let geq b x y =
  let terms = ref [] in
  Array.iteri (fun i w -> terms := (w, 1 lsl i) :: !terms) x;
  Array.iteri (fun i w -> terms := (w, -(1 lsl i)) :: !terms) y;
  Builder.add_gate_terms b ~terms:(List.rev !terms) ~threshold:0

let mux b ~sel ~if_true ~if_false =
  let width = max (Array.length if_true) (Array.length if_false) in
  Array.init width (fun j ->
      match (bit if_true j, bit if_false j) with
      | None, None -> Builder.const b false
      | Some t, None ->
          (* sel AND t *)
          Builder.add_gate b ~inputs:[| sel; t |] ~weights:[| 1; 1 |] ~threshold:2
      | None, Some f ->
          (* (not sel) AND f *)
          Builder.add_gate b ~inputs:[| sel; f |] ~weights:[| -1; 1 |] ~threshold:1
      | Some t, Some f ->
          let a = Builder.add_gate b ~inputs:[| sel; t |] ~weights:[| 1; 1 |] ~threshold:2 in
          let c = Builder.add_gate b ~inputs:[| sel; f |] ~weights:[| -1; 1 |] ~threshold:1 in
          Builder.add_gate b ~inputs:[| a; c |] ~weights:[| 1; 1 |] ~threshold:1)

type normalized = { sign_negative : Wire.t; magnitude : Repr.bits }

let normalize b (s : Repr.signed) =
  let p = Weighted_sum.to_bits b s.Repr.pos in
  let n = Weighted_sum.to_bits b s.Repr.neg in
  (* Strictly negative iff neg > pos, i.e. not (pos >= neg). *)
  let pos_ge = geq b p n in
  let sign_negative =
    Builder.add_gate b ~inputs:[| pos_ge |] ~weights:[| -1 |] ~threshold:0
  in
  let p_minus_n = sub b p n in
  let n_minus_p = sub b n p in
  let magnitude = mux b ~sel:sign_negative ~if_true:n_minus_p ~if_false:p_minus_n in
  { sign_negative; magnitude }
