open Tcmm_threshold
module Checked = Tcmm_util.Checked

let terms_of_signed (s : Repr.signed) =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  let add sign (u : Repr.unsigned) =
    Array.iteri
      (fun i wire ->
        let w = Checked.mul sign u.Repr.weights.(i) in
        match Hashtbl.find_opt tbl wire with
        | None ->
            Hashtbl.add tbl wire w;
            order := wire :: !order
        | Some prev -> Hashtbl.replace tbl wire (Checked.add prev w))
      u.Repr.wires
  in
  add 1 s.Repr.pos;
  add (-1) s.Repr.neg;
  List.rev !order
  |> List.filter_map (fun wire ->
         match Hashtbl.find tbl wire with 0 -> None | w -> Some (wire, w))

let ge b s c = Builder.add_gate_terms b ~terms:(terms_of_signed s) ~threshold:c
