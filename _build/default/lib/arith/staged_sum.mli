(** Multi-stage addition (the Theorem 4.1 route).

    Before the paper's level-selection refinement, Section 4.2 considers
    computing each leaf sum directly with deeper addition circuits in the
    style of Siu, Roychowdhury and Kailath: split the [n] summands into
    groups of roughly [n^(1/stages)], add each group in depth 2
    (Lemma 3.2), and recurse on the partial sums.  Depth [2 * stages],
    gate count [O(stages * n^(1/stages))] per bit-ish — asymptotically
    weaker than the level-selection scheme, which experiment E6
    demonstrates. *)

open Tcmm_threshold

val signed_sum :
  Builder.t -> stages:int -> (int * Repr.signed) list -> Repr.signed_bits
(** [signed_sum b ~stages terms] computes [sum_i c_i * s_i] using
    [stages] rounds of grouped depth-2 additions ([stages = 1] is exactly
    {!Weighted_sum.signed_sum}).  Requires [stages >= 1]. *)

val group_size : n:int -> stages:int -> int
(** The per-round group size [ceil(n^(1/stages))] used by the split. *)
