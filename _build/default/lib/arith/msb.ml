open Tcmm_threshold

let gate_cost ~k = (1 lsl k) + 1

let kth_msb ?(offset = 0) b ~terms ~l ~k =
  if k < 1 || k > l then invalid_arg "Msb.kth_msb: need 1 <= k <= l";
  if l >= 62 then invalid_arg "Msb.kth_msb: l too large for native ints";
  let step = 1 lsl (l - k) in
  let n = 1 lsl k in
  (* First layer: y_i = (s + offset >= i * 2^(l-k)), 1-indexed.  All n
     gates read the same terms; share the input arrays across the
     layer. *)
  let inputs = Array.of_list (List.map fst terms) in
  let weights = Array.of_list (List.map snd terms) in
  let thresholds = Array.init n (fun i -> ((i + 1) * step) - offset) in
  let y = Builder.add_shared_gates b ~inputs ~weights ~thresholds in
  (* Output: the bit is 1 iff s lies in [i*step, (i+1)*step) for some odd i,
     i.e. sum over odd i of (y_i - y_{i+1}) >= 1.  n = 2^k is even, so every
     odd i <= n-1 has a partner y_{i+1}. *)
  let out_terms = ref [] in
  let i = ref 1 in
  while !i < n do
    out_terms := (y.(!i), -1) :: (y.(!i - 1), 1) :: !out_terms;
    i := !i + 2
  done;
  Builder.add_gate_terms b ~terms:(List.rev !out_terms) ~threshold:1
