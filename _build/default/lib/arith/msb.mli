(** Lemma 3.1: one bit of a weighted sum of bits, in depth 2.

    Let [s = sum_i w_i x_i] with [x_i] boolean wires and integer constant
    weights, and suppose the caller guarantees [s] lies in [\[0, 2^l)].
    The k-th most significant bit of [s] (as an [l]-bit number, [k] counted
    from 1 at the MSB) is computed by a depth-2 circuit of [2^k + 1] gates:
    a first layer [y_i = (s >= i * 2^(l-k))] for [1 <= i <= 2^k] and an
    output gate testing [sum_{odd i} (y_i - y_{i+1}) >= 1]. *)

open Tcmm_threshold

val kth_msb :
  ?offset:int -> Builder.t -> terms:(Wire.t * int) list -> l:int -> k:int -> Wire.t
(** Builds the Lemma 3.1 circuit and returns the output wire.  [offset]
    (default 0) adds a constant to the sum — free, since it only shifts
    the first-layer thresholds; the caller's range guarantee applies to
    [sum + offset].  Requires [1 <= k <= l] and [l < 62]; raises
    [Invalid_argument] otherwise.  If the evaluated (offset) sum falls
    outside [\[0, 2^l)], the output is unspecified (the lemma's
    precondition), though the paper notes the circuit returns 0 for [s]
    outside the range. *)

val gate_cost : k:int -> int
(** Number of gates the construction uses: [2^k + 1]. *)
