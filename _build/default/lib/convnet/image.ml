type t = { channels : int; height : int; width : int; data : int array }

let create ~channels ~height ~width =
  if channels < 1 || height < 1 || width < 1 then
    invalid_arg "Image.create: nonpositive dimension";
  { channels; height; width; data = Array.make (channels * height * width) 0 }

let index t c y x name =
  if c < 0 || c >= t.channels || y < 0 || y >= t.height || x < 0 || x >= t.width then
    invalid_arg (Printf.sprintf "Image.%s: (%d,%d,%d) out of range" name c y x);
  (((c * t.height) + y) * t.width) + x

let get t ~c ~y ~x = t.data.(index t c y x "get")
let set t ~c ~y ~x v = t.data.(index t c y x "set") <- v

let init ~channels ~height ~width f =
  let t = create ~channels ~height ~width in
  for c = 0 to channels - 1 do
    for y = 0 to height - 1 do
      for x = 0 to width - 1 do
        set t ~c ~y ~x (f c y x)
      done
    done
  done;
  t

let random rng ~channels ~height ~width ~lo ~hi =
  init ~channels ~height ~width (fun _ _ _ -> Tcmm_util.Prng.int_range rng ~lo ~hi)

let equal a b =
  a.channels = b.channels && a.height = b.height && a.width = b.width
  && a.data = b.data
