(** The im2col lowering (paper, Section 5, after Warden).

    A convolutional step applying [K] kernels of shape
    [channels x q x q] to an image with a given stride becomes the
    product of a [P x Q] patch matrix ([P] patch positions,
    [Q = q * q * channels] values per patch) with a [Q x K] kernel
    matrix; output entry [(patch, kernel)] is that patch's score under
    that kernel. *)

type spec = { q : int; stride : int }

val output_dims : spec -> Image.t -> int * int
(** [(out_h, out_w)]: number of vertical/horizontal patch positions.
    Raises [Invalid_argument] if the kernel does not fit or the stride is
    nonpositive. *)

val patch_count : spec -> Image.t -> int
(** [P = out_h * out_w]. *)

val patch_matrix : spec -> Image.t -> Tcmm_fastmm.Matrix.t
(** The [P x Q] matrix; patch [(py, px)] is row [py * out_w + px], its
    values ordered channel-major then row-major (matching
    {!kernel_matrix}). *)

val kernel_matrix : Image.t array -> Tcmm_fastmm.Matrix.t
(** The [Q x K] matrix for [K] kernels (all of equal shape; raises
    [Invalid_argument] otherwise, or if [K = 0]). *)

val scores_of_product : spec -> Image.t -> Tcmm_fastmm.Matrix.t -> int array array array
(** [scores_of_product spec image product] reshapes the [P x K] product
    back to [K x out_h x out_w] score planes. *)

val embed : Tcmm_fastmm.Matrix.t -> n:int -> Tcmm_fastmm.Matrix.t
(** Zero-pad a matrix into the top-left corner of an [n x n] matrix (for
    feeding the square-matrix circuits).  Raises [Invalid_argument] if
    it does not fit. *)
