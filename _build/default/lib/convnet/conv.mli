(** Convolution references and the conv-as-matmul pipeline.

    {!direct} computes kernel scores by definition; {!via_matmul} runs
    the im2col lowering through a matrix product.  The two must agree —
    that equivalence is the paper's Section 5 reduction, and it is what
    lets the threshold matmul circuit evaluate a convolutional layer. *)

val direct : Im2col.spec -> Image.t -> Image.t array -> int array array array
(** [K x out_h x out_w] score planes: plane [k] at [(y, x)] is the dot
    product of kernel [k] with the patch at [(y, x)]. *)

val via_matmul : Im2col.spec -> Image.t -> Image.t array -> int array array array
(** Same scores through [patch_matrix * kernel_matrix]. *)

val circuit_size : Im2col.spec -> Image.t -> Image.t array -> t_dim:int -> int
(** Smallest power of [t_dim] that accommodates the [P x Q] and [Q x K]
    operands when embedded into square matrices for the circuits. *)
