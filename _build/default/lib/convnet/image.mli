(** Multi-channel integer images and convolution kernels.

    The paper's deep-learning motivation (Section 5) reduces a
    convolutional layer to a dense matrix product; this module supplies
    the image/kernel data model.  Kernels are just small images
    ([channels x q x q]). *)

type t = private { channels : int; height : int; width : int; data : int array }

val create : channels:int -> height:int -> width:int -> t
val init : channels:int -> height:int -> width:int -> (int -> int -> int -> int) -> t
(** [init ~channels ~height ~width f] fills pixel [(c, y, x)] with
    [f c y x]. *)

val get : t -> c:int -> y:int -> x:int -> int
val set : t -> c:int -> y:int -> x:int -> int -> unit
val random : Tcmm_util.Prng.t -> channels:int -> height:int -> width:int -> lo:int -> hi:int -> t
val equal : t -> t -> bool
