open Tcmm_threshold
open Tcmm_arith
module Checked = Tcmm_util.Checked

type feature_map = Repr.signed_bits array array array

let input_image b ~channels ~height ~width ~entry_bits ~signed =
  if channels < 1 || height < 1 || width < 1 then
    invalid_arg "Inference.input_image: empty image";
  if entry_bits < 1 || entry_bits > 60 then
    invalid_arg "Inference.input_image: entry_bits out of range";
  let wires_per = if signed then 2 * entry_bits else entry_bits in
  let base = Builder.num_wires b in
  ignore (Builder.add_inputs b (channels * height * width * wires_per));
  let offset c y x = base + ((((c * height) + y) * width + x) * wires_per) in
  let fm =
    Array.init channels (fun c ->
        Array.init height (fun y ->
            Array.init width (fun x ->
                let off = offset c y x in
                {
                  Repr.pos_bits = Array.init entry_bits (fun k -> off + k);
                  neg_bits =
                    (if signed then Array.init entry_bits (fun k -> off + entry_bits + k)
                     else [||]);
                })))
  in
  let write (img : Image.t) input =
    if
      img.Image.channels <> channels || img.Image.height <> height
      || img.Image.width <> width
    then invalid_arg "Inference.input_image: image shape mismatch";
    let limit = (1 lsl entry_bits) - 1 in
    for c = 0 to channels - 1 do
      for y = 0 to height - 1 do
        for x = 0 to width - 1 do
          let v = Image.get img ~c ~y ~x in
          if v < 0 && not signed then
            invalid_arg "Inference.input_image: negative pixel in unsigned layout";
          if abs v > limit then
            invalid_arg "Inference.input_image: pixel does not fit entry_bits";
          let off = offset c y x in
          for k = 0 to entry_bits - 1 do
            let bit = (abs v lsr k) land 1 = 1 in
            if v >= 0 then input.(off + k) <- bit
            else input.(off + entry_bits + k) <- bit
          done
        done
      done
    done
  in
  (fm, write)

let map_dims fm = (Array.length fm, Array.length fm.(0), Array.length fm.(0).(0))

let conv_fixed ?share_top ?bias b ~(spec : Im2col.spec) ~kernels fm =
  let channels, height, width = map_dims fm in
  if Array.length kernels = 0 then invalid_arg "Inference.conv_fixed: no kernels";
  (match bias with
  | Some bs when Array.length bs <> Array.length kernels ->
      invalid_arg "Inference.conv_fixed: bias length must match kernel count"
  | _ -> ());
  (* One shared constant wire carries every nonzero bias. *)
  let bias_term =
    match bias with
    | Some bs when Array.exists (fun v -> v <> 0) bs ->
        let one = Builder.const b true in
        let sb = { Repr.pos_bits = [| one |]; neg_bits = [||] } in
        Some (Repr.signed_of_sbits sb)
    | _ -> None
  in
  Array.iter
    (fun (ker : Image.t) ->
      if
        ker.Image.channels <> channels
        || ker.Image.height <> spec.Im2col.q
        || ker.Image.width <> spec.Im2col.q
      then invalid_arg "Inference.conv_fixed: kernel shape mismatch")
    kernels;
  if spec.Im2col.stride < 1 then invalid_arg "Inference.conv_fixed: stride < 1";
  if spec.Im2col.q > height || spec.Im2col.q > width then
    invalid_arg "Inference.conv_fixed: kernel does not fit";
  let oh = ((height - spec.Im2col.q) / spec.Im2col.stride) + 1 in
  let ow = ((width - spec.Im2col.q) / spec.Im2col.stride) + 1 in
  Array.mapi
    (fun ki (ker : Image.t) ->
      let kernel_bias =
        match (bias, bias_term) with
        | Some bs, Some t when bs.(ki) <> 0 -> [ (bs.(ki), t) ]
        | _ -> []
      in
      Array.init oh (fun py ->
          Array.init ow (fun px ->
              let terms = ref [] in
              for c = 0 to channels - 1 do
                for dy = 0 to spec.Im2col.q - 1 do
                  for dx = 0 to spec.Im2col.q - 1 do
                    let w = Image.get ker ~c ~y:dy ~x:dx in
                    if w <> 0 then begin
                      let pixel =
                        fm.(c).((py * spec.Im2col.stride) + dy).((px * spec.Im2col.stride) + dx)
                      in
                      terms := (w, Repr.signed_of_sbits pixel) :: !terms
                    end
                  done
                done
              done;
              Weighted_sum.signed_sum ?share_top b (List.rev !terms @ kernel_bias))))
    kernels

let relu b fm =
  Array.map
    (Array.map
       (Array.map (fun (sb : Repr.signed_bits) ->
            if Array.length sb.Repr.neg_bits = 0 then
              (* Already nonnegative: ReLU is the identity. *)
              sb
            else begin
              let norm = Binary.normalize b (Repr.signed_of_sbits sb) in
              let masked =
                Array.map
                  (fun mag ->
                    Builder.add_gate b
                      ~inputs:[| norm.Binary.sign_negative; mag |]
                      ~weights:[| -1; 1 |] ~threshold:1)
                  norm.Binary.magnitude
              in
              { Repr.pos_bits = masked; neg_bits = [||] }
            end)))
    fm

let max_pool b ~size fm =
  if size < 1 then invalid_arg "Inference.max_pool: size < 1";
  let _, height, width = map_dims fm in
  if height mod size <> 0 || width mod size <> 0 then
    invalid_arg "Inference.max_pool: dimensions not divisible by pool size";
  let pair_max x y =
    let ge = Binary.geq b x y in
    Binary.mux b ~sel:ge ~if_true:x ~if_false:y
  in
  let rec tree_max = function
    | [] -> [||]
    | [ x ] -> x
    | xs ->
        let rec pair_up = function
          | a :: c :: rest -> pair_max a c :: pair_up rest
          | [ a ] -> [ a ]
          | [] -> []
        in
        tree_max (pair_up xs)
  in
  Array.map
    (fun plane ->
      Array.init (height / size) (fun py ->
          Array.init (width / size) (fun px ->
              let window = ref [] in
              for dy = size - 1 downto 0 do
                for dx = size - 1 downto 0 do
                  let (sb : Repr.signed_bits) =
                    plane.((py * size) + dy).((px * size) + dx)
                  in
                  if Array.length sb.Repr.neg_bits <> 0 then
                    invalid_arg "Inference.max_pool: feature map must be nonnegative";
                  window := sb.Repr.pos_bits :: !window
                done
              done;
              { Repr.pos_bits = tree_max !window; neg_bits = [||] })))
    fm

let reference_max_pool ~size values =
  Array.map
    (fun plane ->
      let height = Array.length plane and width = Array.length plane.(0) in
      Array.init (height / size) (fun py ->
          Array.init (width / size) (fun px ->
              let best = ref min_int in
              for dy = 0 to size - 1 do
                for dx = 0 to size - 1 do
                  best := max !best plane.((py * size) + dy).((px * size) + dx)
                done
              done;
              !best)))
    values

let reference_conv ?bias (spec : Im2col.spec) kernels values =
  let channels = Array.length values in
  let height = Array.length values.(0) in
  let width = Array.length values.(0).(0) in
  let oh = ((height - spec.Im2col.q) / spec.Im2col.stride) + 1 in
  let ow = ((width - spec.Im2col.q) / spec.Im2col.stride) + 1 in
  Array.mapi
    (fun ki (ker : Image.t) ->
      Array.init oh (fun py ->
          Array.init ow (fun px ->
              let acc = ref (match bias with Some bs -> bs.(ki) | None -> 0) in
              for c = 0 to channels - 1 do
                for dy = 0 to spec.Im2col.q - 1 do
                  for dx = 0 to spec.Im2col.q - 1 do
                    acc :=
                      Checked.add !acc
                        (Checked.mul
                           (Image.get ker ~c ~y:dy ~x:dx)
                           values.(c).((py * spec.Im2col.stride) + dy).((px * spec.Im2col.stride) + dx))
                  done
                done
              done;
              !acc)))
    kernels

let reference_relu = Array.map (Array.map (Array.map (fun v -> max v 0)))

let read_feature_map read fm =
  Array.map (Array.map (Array.map (Repr.eval_sbits read))) fm
