module Matrix = Tcmm_fastmm.Matrix
module Checked = Tcmm_util.Checked

let direct spec img kernels =
  let oh, ow = Im2col.output_dims spec img in
  Array.map
    (fun (ker : Image.t) ->
      Array.init oh (fun py ->
          Array.init ow (fun px ->
              let acc = ref 0 in
              for c = 0 to ker.Image.channels - 1 do
                for dy = 0 to spec.Im2col.q - 1 do
                  for dx = 0 to spec.Im2col.q - 1 do
                    let pixel =
                      Image.get img ~c
                        ~y:((py * spec.Im2col.stride) + dy)
                        ~x:((px * spec.Im2col.stride) + dx)
                    in
                    acc := Checked.add !acc (Checked.mul pixel (Image.get ker ~c ~y:dy ~x:dx))
                  done
                done
              done;
              !acc)))
    kernels

let via_matmul spec img kernels =
  let patches = Im2col.patch_matrix spec img in
  let kmat = Im2col.kernel_matrix kernels in
  Im2col.scores_of_product spec img (Matrix.mul patches kmat)

let circuit_size spec img kernels ~t_dim =
  let patches = Im2col.patch_matrix spec img in
  let kmat = Im2col.kernel_matrix kernels in
  let need =
    max (Matrix.rows patches) (max (Matrix.cols patches) (Matrix.cols kmat))
  in
  let rec grow n = if n >= need then n else grow (n * t_dim) in
  grow t_dim
