(** Fixed-weight network inference inside the threshold circuit.

    The paper's deep-learning motivation (Sections 1 and 5) distinguishes
    two regimes.  When {e both} matrix operands are inputs (training,
    data-dependent products), the subcubic matmul circuit of Theorem 4.9
    is the tool.  For {e inference} the kernel weights are constants — and
    constants do not need Lemma 3.3 product gates at all: they become
    gate {e weights}, so a whole convolutional layer is one Lemma 3.2
    layer (depth 2) per output entry, and a ReLU is a sign test plus a
    masked copy (depth 3).  This module builds entire fixed-weight
    convolutional pipelines that run on-chip, the scenario the paper's
    introduction says would "avoid energy-intensive and slow I/O".

    Feature maps are grids of signed binary values
    ([channels x height x width] of {!Tcmm_arith.Repr.signed_bits}); the
    input layer comes from an {!Tcmm.Encode}-style allocation of image
    pixels, and each layer consumes the previous layer's wires
    directly — one circuit, end to end. *)

open Tcmm_threshold
open Tcmm_arith

type feature_map = Repr.signed_bits array array array
(** Indexed [channel].[y].[x]. *)

val input_image :
  Builder.t -> channels:int -> height:int -> width:int -> entry_bits:int ->
  signed:bool -> feature_map * (Image.t -> bool array -> unit)
(** Allocates input wires for an image (must precede gates) and returns
    the feature map plus a writer that encodes a concrete {!Image.t} into
    a simulator input vector. *)

val conv_fixed :
  ?share_top:bool ->
  ?bias:int array ->
  Builder.t ->
  spec:Im2col.spec ->
  kernels:Image.t array ->
  feature_map ->
  feature_map
(** [conv_fixed b ~spec ~kernels fm]: one convolution layer with
    {e constant} integer kernels.  Output channel [k] at [(y, x)] is the
    kernel-weighted sum of the input patch — a single depth-2 signed sum
    whose weights are the kernel coefficients.  [bias] (one integer per
    kernel; default all zero) adds the usual per-channel constant term,
    implemented as one extra weighted term on a shared constant wire.
    Raises [Invalid_argument] if kernel shape does not match the feature
    map's channel count or if [bias] length differs from the kernel
    count. *)

val relu : Builder.t -> feature_map -> feature_map
(** Pointwise [max(v, 0)]: canonical magnitude masked by the sign
    (depth 3 on top of its input).  Output entries are nonnegative
    (empty negative part). *)

val max_pool : Builder.t -> size:int -> feature_map -> feature_map
(** Non-overlapping [size x size] max pooling (stride = [size]) on a
    {e nonnegative} feature map (as produced by {!relu}; raises
    [Invalid_argument] on entries with a negative part, or if the
    spatial dimensions are not multiples of [size]).  Each output is a
    balanced tree of pairwise max selections (one comparison gate plus a
    bitwise mux per pair, depth 3 per tree level). *)

val reference_conv :
  ?bias:int array ->
  Im2col.spec ->
  Image.t array ->
  int array array array ->
  int array array array
(** Integer reference of {!conv_fixed} on a concrete
    [channels x h x w] value array. *)

val reference_relu : int array array array -> int array array array
val reference_max_pool : size:int -> int array array array -> int array array array

val read_feature_map :
  (Wire.t -> bool) -> feature_map -> int array array array
(** Decode a simulated feature map. *)
