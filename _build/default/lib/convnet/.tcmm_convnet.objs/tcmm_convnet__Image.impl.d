lib/convnet/image.ml: Array Printf Tcmm_util
