lib/convnet/image.mli: Tcmm_util
