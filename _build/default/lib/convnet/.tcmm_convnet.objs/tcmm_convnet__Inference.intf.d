lib/convnet/inference.mli: Builder Im2col Image Repr Tcmm_arith Tcmm_threshold Wire
