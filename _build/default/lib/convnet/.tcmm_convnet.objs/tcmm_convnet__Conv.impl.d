lib/convnet/conv.ml: Array Im2col Image Tcmm_fastmm Tcmm_util
