lib/convnet/im2col.mli: Image Tcmm_fastmm
