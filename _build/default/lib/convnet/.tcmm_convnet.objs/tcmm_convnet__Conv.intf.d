lib/convnet/conv.mli: Im2col Image
