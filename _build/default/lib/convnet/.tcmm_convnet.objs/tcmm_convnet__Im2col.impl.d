lib/convnet/im2col.ml: Array Image Tcmm_fastmm
