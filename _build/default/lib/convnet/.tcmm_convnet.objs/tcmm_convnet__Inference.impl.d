lib/convnet/inference.ml: Array Binary Builder Im2col Image List Repr Tcmm_arith Tcmm_threshold Tcmm_util Weighted_sum
