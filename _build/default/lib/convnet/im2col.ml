module Matrix = Tcmm_fastmm.Matrix

type spec = { q : int; stride : int }

let output_dims spec (img : Image.t) =
  if spec.q < 1 || spec.q > img.Image.height || spec.q > img.Image.width then
    invalid_arg "Im2col.output_dims: kernel does not fit";
  if spec.stride < 1 then invalid_arg "Im2col.output_dims: stride < 1";
  ( ((img.Image.height - spec.q) / spec.stride) + 1,
    ((img.Image.width - spec.q) / spec.stride) + 1 )

let patch_count spec img =
  let oh, ow = output_dims spec img in
  oh * ow

let patch_values spec (img : Image.t) ~py ~px =
  let base_y = py * spec.stride and base_x = px * spec.stride in
  let q = spec.q in
  Array.init
    (img.Image.channels * q * q)
    (fun idx ->
      let c = idx / (q * q) in
      let rest = idx mod (q * q) in
      let dy = rest / q and dx = rest mod q in
      Image.get img ~c ~y:(base_y + dy) ~x:(base_x + dx))

let patch_matrix spec img =
  let oh, ow = output_dims spec img in
  let q_len = img.Image.channels * spec.q * spec.q in
  Matrix.init ~rows:(oh * ow) ~cols:q_len (fun p idx ->
      let py = p / ow and px = p mod ow in
      (patch_values spec img ~py ~px).(idx))

let kernel_matrix kernels =
  let k = Array.length kernels in
  if k = 0 then invalid_arg "Im2col.kernel_matrix: no kernels";
  let first = kernels.(0) in
  Array.iter
    (fun (ker : Image.t) ->
      if
        ker.Image.channels <> first.Image.channels
        || ker.Image.height <> first.Image.height
        || ker.Image.width <> first.Image.width
      then invalid_arg "Im2col.kernel_matrix: kernels of unequal shape")
    kernels;
  if first.Image.height <> first.Image.width then
    invalid_arg "Im2col.kernel_matrix: kernels must be square";
  let q = first.Image.height in
  let q_len = first.Image.channels * q * q in
  Matrix.init ~rows:q_len ~cols:k (fun idx kk ->
      let c = idx / (q * q) in
      let rest = idx mod (q * q) in
      let dy = rest / q and dx = rest mod q in
      Image.get kernels.(kk) ~c ~y:dy ~x:dx)

let scores_of_product spec img product =
  let oh, ow = output_dims spec img in
  let k = Matrix.cols product in
  Array.init k (fun kk ->
      Array.init oh (fun py ->
          Array.init ow (fun px -> Matrix.get product ((py * ow) + px) kk)))

let embed m ~n =
  if Matrix.rows m > n || Matrix.cols m > n then
    invalid_arg "Im2col.embed: matrix larger than target";
  let out = Matrix.create ~rows:n ~cols:n in
  Matrix.blit_block ~src:m ~dst:out ~row:0 ~col:0;
  out
