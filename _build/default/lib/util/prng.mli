(** Deterministic pseudo-random number generation (SplitMix64).

    Experiments and property tests need reproducible workloads across runs
    and machines, so the repository never uses [Stdlib.Random]; all
    randomness flows through an explicitly seeded SplitMix64 stream. *)

type t
(** A mutable PRNG state. *)

val create : seed:int -> t
(** [create ~seed] initializes a stream from [seed]. *)

val next : t -> int
(** [next t] is the next raw 62-bit nonnegative integer of the stream. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val int_range : t -> lo:int -> hi:int -> int
(** [int_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val bool : t -> bool
(** [bool t] is a uniform boolean. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val split : t -> t
(** [split t] derives an independent stream (advances [t] once). *)
