type cell = Str of string | Int of int | Float of float | Sci of float | Ratio of float

let cell_text = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.4f" f
  | Sci f -> Printf.sprintf "%.3e" f
  | Ratio f -> Printf.sprintf "%.2fx" f

let right_aligned = function Str _ -> false | Int _ | Float _ | Sci _ | Ratio _ -> true

let render ~title ~header ~rows =
  let ncols = List.length header in
  let pad_row r =
    let len = List.length r in
    if len > ncols then invalid_arg "Tablefmt.render: row wider than header"
    else r @ List.init (ncols - len) (fun _ -> Str "")
  in
  let rows = List.map pad_row rows in
  let texts = List.map (List.map cell_text) rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) texts)
      header
  in
  let buf = Buffer.create 1024 in
  let rule () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let add_cells cells aligns =
    List.iteri
      (fun i text ->
        let w = List.nth widths i in
        let pad = w - String.length text in
        let left, right = if List.nth aligns i then (pad, 0) else (0, pad) in
        Buffer.add_string buf
          ("| " ^ String.make left ' ' ^ text ^ String.make right ' ' ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  rule ();
  add_cells header (List.map (fun _ -> false) header);
  rule ();
  List.iter2 (fun texts row -> add_cells texts (List.map right_aligned row)) texts rows;
  rule ();
  Buffer.contents buf

let print ~title ~header ~rows =
  print_string (render ~title ~header ~rows);
  print_newline ()
