let bits m =
  if m < 0 then invalid_arg "Ilog.bits: negative argument";
  let rec go l p = if m < p then l else go (l + 1) (p * 2) in
  (* [p] doubles from 1; [m < max_int] guarantees termination before
     overflow because [p] reaches [2^62] > any valid [m / 2]. *)
  go 0 1

let floor_log2 m =
  if m <= 0 then invalid_arg "Ilog.floor_log2: nonpositive argument";
  bits m - 1

let ceil_log2 m =
  if m <= 0 then invalid_arg "Ilog.ceil_log2: nonpositive argument";
  bits (m - 1)

let floor_log ~base m =
  if base < 2 then invalid_arg "Ilog.floor_log: base < 2";
  if m < 1 then invalid_arg "Ilog.floor_log: m < 1";
  let rec go l p = if p > m / base then l else go (l + 1) (p * base) in
  go 0 1

let ceil_log ~base m =
  if base < 2 then invalid_arg "Ilog.ceil_log: base < 2";
  if m < 1 then invalid_arg "Ilog.ceil_log: m < 1";
  if m = 1 then 0
  else
    let rec go l p =
      if p >= m then l
      else if p > m / base then l + 1 (* next multiply passes m *)
      else go (l + 1) (p * base)
    in
    go 0 1

let is_pow ~base m =
  if base < 2 then invalid_arg "Ilog.is_pow: base < 2";
  if m < 1 then invalid_arg "Ilog.is_pow: m < 1";
  let rec go p = if p = m then true else if p > m / base then false else go (p * base) in
  go 1

let exact_log ~base m =
  if not (is_pow ~base m) then
    invalid_arg (Printf.sprintf "Ilog.exact_log: %d is not a power of %d" m base);
  floor_log ~base m
