type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* SplitMix64 (Steele, Lea, Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = 0x3FFF_FFFF_FFFF_FFFF / bound * bound in
  let rec go () =
    let r = next t in
    if r < limit then r mod bound else go ()
  in
  go ()

let int_range t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_range: lo > hi";
  lo + int t ~bound:(hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L
let float t = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) *. 0x1p-53
let split t = { state = next_int64 t }
