(** Integer logarithms and the paper's [bits] function.

    The paper (Section 2.3) defines [bits m] as the least [l] such that
    [m < 2^l], i.e. the number of bits needed to write the nonnegative
    integer [m] in binary (with [bits 0 = 0]). *)

val bits : int -> int
(** [bits m] is the least [l >= 0] with [m < 2^l].  Raises
    [Invalid_argument] if [m < 0]. *)

val floor_log2 : int -> int
(** [floor_log2 m] is the greatest [l] with [2^l <= m].  Raises
    [Invalid_argument] if [m <= 0]. *)

val ceil_log2 : int -> int
(** [ceil_log2 m] is the least [l] with [m <= 2^l].  Raises
    [Invalid_argument] if [m <= 0]. *)

val floor_log : base:int -> int -> int
(** [floor_log ~base m] is the greatest [l] with [base^l <= m].
    Requires [base >= 2] and [m >= 1]. *)

val ceil_log : base:int -> int -> int
(** [ceil_log ~base m] is the least [l] with [m <= base^l].
    Requires [base >= 2] and [m >= 1]. *)

val is_pow : base:int -> int -> bool
(** [is_pow ~base m] is [true] iff [m] is a nonnegative power of [base].
    Requires [base >= 2] and [m >= 1]. *)

val exact_log : base:int -> int -> int
(** [exact_log ~base m] is [l] such that [base^l = m].  Raises
    [Invalid_argument] if [m] is not a power of [base]. *)
