lib/util/ilog.ml: Printf
