lib/util/checked.ml: Array List Printf Stdlib
