lib/util/ilog.mli:
