lib/util/checked.mli:
