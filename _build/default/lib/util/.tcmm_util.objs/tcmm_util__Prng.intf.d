lib/util/prng.mli:
