lib/util/tablefmt.mli:
