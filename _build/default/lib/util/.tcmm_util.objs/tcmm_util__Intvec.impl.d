lib/util/intvec.ml: Array Printf
