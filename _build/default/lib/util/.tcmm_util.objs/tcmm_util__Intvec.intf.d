lib/util/intvec.mli:
