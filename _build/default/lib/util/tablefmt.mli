(** Plain-text table rendering for experiment output.

    The benchmark harness prints every reproduced table as an aligned ASCII
    table; this module owns the layout so all experiment output looks the
    same. *)

type cell =
  | Str of string
  | Int of int
  | Float of float  (** rendered with 4 significant decimals *)
  | Sci of float  (** rendered in scientific notation, 3 decimals *)
  | Ratio of float  (** rendered as e.g. [1.73x] *)

val render : title:string -> header:string list -> rows:cell list list -> string
(** [render ~title ~header ~rows] lays the table out with one column per
    header entry.  Rows shorter than the header are padded with blanks.
    Numeric cells are right-aligned, strings left-aligned. *)

val print : title:string -> header:string list -> rows:cell list list -> unit
(** [print] renders to [stdout] followed by a blank line. *)
