exception Overflow of string

let fail op a b =
  raise (Overflow (Printf.sprintf "Checked.%s: %d %d" op a b))

let add a b =
  let r = a + b in
  (* Overflow iff operands share a sign and the result sign differs. *)
  if (a >= 0) = (b >= 0) && (r >= 0) <> (a >= 0) then fail "add" a b;
  r

let sub a b =
  let r = a - b in
  if (a >= 0) <> (b >= 0) && (r >= 0) <> (a >= 0) then fail "sub" a b;
  r

let mul a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a || (a = min_int && b = -1) then fail "mul" a b;
    r

let neg a = if a = min_int then fail "neg" a 0 else -a
let abs a = if a = min_int then fail "abs" a 0 else Stdlib.abs a

let pow base e =
  if e < 0 then invalid_arg "Checked.pow: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc base else acc in
      let e = e lsr 1 in
      if e = 0 then acc else go acc (mul base base) e
  in
  go 1 base e

let sum xs = List.fold_left add 0 xs
let sum_array xs = Array.fold_left add 0 xs
