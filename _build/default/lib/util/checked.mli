(** Overflow-checked arithmetic on native [int].

    All circuit weights, thresholds and simulated sums in this repository are
    native 63-bit integers.  The constructions bound every intermediate value
    by design (entries have [O(log N)] bits and [N <= 2^10] in experiments),
    but a silent wrap-around would corrupt gate counts or simulation results
    without any error, so the hot paths use these checked operations.

    Each function raises [Overflow] if the mathematical result does not fit
    in a native [int]. *)

exception Overflow of string

val add : int -> int -> int
(** [add a b] is [a + b], raising [Overflow] on wrap-around. *)

val sub : int -> int -> int
(** [sub a b] is [a - b], raising [Overflow] on wrap-around. *)

val mul : int -> int -> int
(** [mul a b] is [a * b], raising [Overflow] on wrap-around. *)

val neg : int -> int
(** [neg a] is [-a], raising [Overflow] when [a = min_int]. *)

val abs : int -> int
(** [abs a] is the absolute value of [a], raising [Overflow] when
    [a = min_int]. *)

val pow : int -> int -> int
(** [pow base e] is [base] raised to the nonnegative exponent [e], checked.
    Raises [Invalid_argument] if [e < 0]. *)

val sum : int list -> int
(** [sum xs] adds up [xs] with overflow checking. *)

val sum_array : int array -> int
(** [sum_array xs] adds up [xs] with overflow checking. *)
