let naive ~t_dim =
  if t_dim < 1 then invalid_arg "Instances.naive: t_dim < 1";
  let t = t_dim in
  let t2 = t * t in
  let rank = t * t * t in
  (* Multiplication index (i, k, j) |-> A_(i,k) * B_(k,j), contributing to
     C_(i,j). *)
  let u = Array.make_matrix rank t2 0 in
  let v = Array.make_matrix rank t2 0 in
  let w = Array.make_matrix t2 rank 0 in
  let m = ref 0 in
  for i = 0 to t - 1 do
    for k = 0 to t - 1 do
      for j = 0 to t - 1 do
        u.(!m).((i * t) + k) <- 1;
        v.(!m).((k * t) + j) <- 1;
        w.((i * t) + j).(!m) <- 1;
        incr m
      done
    done
  done;
  Bilinear.make ~name:(Printf.sprintf "naive-%d" t) ~t_dim:t ~u ~v ~w

(* Strassen's algorithm, coefficient-for-coefficient from Figure 1 of the
   paper.  Blocks in row-major order: A11 A12 A21 A22. *)
let strassen =
  Bilinear.make ~name:"strassen" ~t_dim:2
    ~u:
      [|
        [| 1; 0; 0; 0 |] (* M1: A11 *);
        [| 0; 0; 1; 1 |] (* M2: A21 + A22 *);
        [| 1; 0; 0; 1 |] (* M3: A11 + A22 *);
        [| 0; 0; 0; 1 |] (* M4: A22 *);
        [| 1; 1; 0; 0 |] (* M5: A11 + A12 *);
        [| -1; 0; 1; 0 |] (* M6: A21 - A11 *);
        [| 0; 1; 0; -1 |] (* M7: A12 - A22 *);
      |]
    ~v:
      [|
        [| 0; 1; 0; -1 |] (* M1: B12 - B22 *);
        [| 1; 0; 0; 0 |] (* M2: B11 *);
        [| 1; 0; 0; 1 |] (* M3: B11 + B22 *);
        [| -1; 0; 1; 0 |] (* M4: B21 - B11 *);
        [| 0; 0; 0; 1 |] (* M5: B22 *);
        [| 1; 1; 0; 0 |] (* M6: B11 + B12 *);
        [| 0; 0; 1; 1 |] (* M7: B21 + B22 *);
      |]
    ~w:
      [|
        [| 0; 0; 1; 1; -1; 0; 1 |] (* C11 = M3 + M4 - M5 + M7 *);
        [| 1; 0; 0; 0; 1; 0; 0 |] (* C12 = M1 + M5 *);
        [| 0; 1; 0; 1; 0; 0; 0 |] (* C21 = M2 + M4 *);
        [| 1; -1; 1; 0; 0; 1; 0 |] (* C22 = M1 - M2 + M3 + M6 *);
      |]

(* Winograd's 15-addition variant of Strassen.  With S1 = A21 + A22,
   S2 = S1 - A11, S3 = A11 - A21, S4 = A12 - S2 and T1 = B12 - B11,
   T2 = B22 - T1, T3 = B22 - B12, T4 = T2 - B21:
     M1 = A11 B11, M2 = A12 B21, M3 = S4 B22, M4 = A22 T4,
     M5 = S1 T1, M6 = S2 T2, M7 = S3 T3
     C11 = M1 + M2, C12 = M1 + M3 + M5 + M6,
     C21 = M1 - M4 + M6 + M7, C22 = M1 + M5 + M6 + M7. *)
let winograd =
  Bilinear.make ~name:"winograd" ~t_dim:2
    ~u:
      [|
        [| 1; 0; 0; 0 |] (* A11 *);
        [| 0; 1; 0; 0 |] (* A12 *);
        [| 1; 1; -1; -1 |] (* S4 = A11 + A12 - A21 - A22 *);
        [| 0; 0; 0; 1 |] (* A22 *);
        [| 0; 0; 1; 1 |] (* S1 = A21 + A22 *);
        [| -1; 0; 1; 1 |] (* S2 = A21 + A22 - A11 *);
        [| 1; 0; -1; 0 |] (* S3 = A11 - A21 *);
      |]
    ~v:
      [|
        [| 1; 0; 0; 0 |] (* B11 *);
        [| 0; 0; 1; 0 |] (* B21 *);
        [| 0; 0; 0; 1 |] (* B22 *);
        [| 1; -1; -1; 1 |] (* T4 = B11 - B12 - B21 + B22 *);
        [| -1; 1; 0; 0 |] (* T1 = B12 - B11 *);
        [| 1; -1; 0; 1 |] (* T2 = B11 - B12 + B22 *);
        [| 0; -1; 0; 1 |] (* T3 = B22 - B12 *);
      |]
    ~w:
      [|
        [| 1; 1; 0; 0; 0; 0; 0 |] (* C11 *);
        [| 1; 0; 1; 0; 1; 1; 0 |] (* C12 *);
        [| 1; 0; 0; -1; 0; 1; 1 |] (* C21 *);
        [| 1; 0; 0; 0; 1; 1; 1 |] (* C22 *);
      |]

let strassen_squared =
  let t = Tensor.product ~name:"strassen^2" strassen strassen in
  t

let all () =
  [ naive ~t_dim:2; naive ~t_dim:3; strassen; winograd; strassen_squared ]
