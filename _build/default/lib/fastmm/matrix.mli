(** Dense integer matrices with exact (overflow-checked) arithmetic.

    This is the conventional-computation substrate: reference results for
    the circuits, operands for the recursive fast multiplier, adjacency
    matrices for the graph workloads.  Values are native ints; every
    arithmetic operation is overflow-checked. *)

type t

val create : rows:int -> cols:int -> t
(** Zero-filled. *)

val init : rows:int -> cols:int -> (int -> int -> int) -> t
(** [init ~rows ~cols f] fills entry [(i, j)] with [f i j]. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> int
val set : t -> int -> int -> int -> unit
val copy : t -> t
val identity : int -> t
val of_rows : int array array -> t
(** Raises [Invalid_argument] on ragged input or zero rows. *)

val to_rows : t -> int array array
val equal : t -> t -> bool
val map : (int -> int) -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val transpose : t -> t

val mul : t -> t -> t
(** Naive cubic product (the exact reference). *)

val pow : t -> int -> t
(** [pow a k] for square [a], [k >= 0]. *)

val trace : t -> int
(** Raises [Invalid_argument] on a non-square matrix. *)

val sub_block : t -> row:int -> col:int -> rows:int -> cols:int -> t
val blit_block : src:t -> dst:t -> row:int -> col:int -> unit

val random : Tcmm_util.Prng.t -> rows:int -> cols:int -> lo:int -> hi:int -> t
(** Entries uniform in [\[lo, hi\]]. *)

val max_abs : t -> int
val pp : Format.formatter -> t -> unit
