(** Tensor (Kronecker) product of bilinear algorithms.

    If [P] multiplies [T1 x T1] matrices with [r1] products and [Q]
    multiplies [T2 x T2] with [r2], then [P ⊗ Q] multiplies
    [T1*T2 x T1*T2] matrices with [r1*r2] products — the standard way to
    derive larger base cases (Section 2.1's "more general tensor
    perspective").  The combined algorithm's coefficients are products of
    the factors' coefficients. *)

val product : name:string -> Bilinear.t -> Bilinear.t -> Bilinear.t

val power : name:string -> Bilinear.t -> int -> Bilinear.t
(** [power ~name a k] is the [k]-fold tensor power ([k >= 1]). *)
