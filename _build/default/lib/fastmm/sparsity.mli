(** Sparsity analysis of a bilinear algorithm (Definition 2.1).

    For each multiplication [M_i], [a_i] ([b_i]) is the number of distinct
    blocks of [A] ([B]) appearing in it, and [c_i] is the number of
    [C]-expressions containing [M_i]; [s_A = sum a_i] etc., and the
    algorithm's sparsity is [s = max(s_A, s_B, s_C)].  The appendix's
    per-expression counts [c'_j] (number of [M_i] in the expression for
    the j-th block of [C]) are also computed; [sum_j c'_j = s_C].

    From these come the constants driving the whole construction
    (Section 4.3): [alpha = r/s], [beta = s/T^2],
    [gamma = log_beta (1/alpha)], and Theorem 4.5's
    [c = log_T(alpha*beta) / (1 - gamma)].  Note [alpha*beta = r/T^2]
    independently of [s]. *)

type side = {
  counts : int array;  (** per multiplication: [a_i], [b_i] or [c_i] *)
  total : int;  (** [s_A], [s_B] or [s_C] *)
}

type constants = {
  alpha : float;  (** [r / s] — in (0, 1] *)
  beta : float;  (** [s / T^2] — at least 1 *)
  gamma : float;  (** [log_beta (1/alpha)]; 0 for the naive algorithm *)
}

type profile = {
  algo : Bilinear.t;
  a : side;
  b : side;
  c : side;
  c_prime : int array;  (** [c'_j] for the [T^2] C-expressions *)
  sparsity : int;  (** [max (s_A, s_B, s_C)] *)
  overall : constants;  (** derived from [sparsity] — what schedules use *)
  a_side : constants;  (** derived from [s_A] (Lemmas 4.2/4.3) *)
  c_side : constants;  (** derived from [s_C] (Lemma 4.6) *)
  omega : float;
  c_const : float;  (** Theorem 4.5's [c]; infinite if [gamma = 1] *)
}

val analyze : Bilinear.t -> profile
(** Raises [Invalid_argument] if [r <= T^2] (the paper's standing
    assumption [r > T^2] — Section 4.3 notes the results do not hold for
    an optimal algorithm with [r = T^2]) or if some multiplication or
    C-expression is entirely zero. *)

val pp : Format.formatter -> profile -> unit
