(** Exact verification of bilinear algorithms.

    An algorithm is correct iff its tensor satisfies Brent's equations:
    for all block positions [(i,k)], [(k',j)], [(i',j')],

    [sum_m u_m(i,k) * v_m(k',j) * w_(i',j')(m)
       = 1 if k = k' and i = i' and j = j', else 0].

    This is a complete algebraic check — no sampling involved — and is
    how the bundled instances (including the tensor powers) are proven
    correct in the test suite.  A randomized matrix check is also
    provided as a sanity cross-check of {!Bilinear.apply_once}. *)

type defect = {
  a_block : int * int;
  b_block : int * int;
  c_block : int * int;
  got : int;
  expected : int;
}

val defects : Bilinear.t -> defect list
(** All violated Brent equations (empty iff the algorithm is correct). *)

val exact : Bilinear.t -> bool
(** [exact algo] iff {!defects} is empty. *)

val random_check :
  Tcmm_util.Prng.t -> ?trials:int -> ?size_multiple:int -> Bilinear.t -> bool
(** [random_check rng algo] compares {!Bilinear.apply_once} against naive
    multiplication on random integer matrices of size
    [size_multiple * t_dim] (default 2), for [trials] (default 10)
    rounds. *)

val pp_defect : Format.formatter -> defect -> unit
