module Checked = Tcmm_util.Checked

type defect = {
  a_block : int * int;
  b_block : int * int;
  c_block : int * int;
  got : int;
  expected : int;
}

let defects (algo : Bilinear.t) =
  let t = algo.Bilinear.t_dim in
  let found = ref [] in
  for i = 0 to t - 1 do
    for k = 0 to t - 1 do
      for k' = 0 to t - 1 do
        for j = 0 to t - 1 do
          for i' = 0 to t - 1 do
            for j' = 0 to t - 1 do
              let ja = (i * t) + k and jb = (k' * t) + j and jc = (i' * t) + j' in
              let sum = ref 0 in
              for m = 0 to algo.Bilinear.rank - 1 do
                sum :=
                  Checked.add !sum
                    (Checked.mul algo.Bilinear.u.(m).(ja)
                       (Checked.mul algo.Bilinear.v.(m).(jb) algo.Bilinear.w.(jc).(m)))
              done;
              let expected = if k = k' && i = i' && j = j' then 1 else 0 in
              if !sum <> expected then
                found :=
                  {
                    a_block = (i, k);
                    b_block = (k', j);
                    c_block = (i', j');
                    got = !sum;
                    expected;
                  }
                  :: !found
            done
          done
        done
      done
    done
  done;
  List.rev !found

let exact algo = defects algo = []

let random_check rng ?(trials = 10) ?(size_multiple = 2) (algo : Bilinear.t) =
  let n = size_multiple * algo.Bilinear.t_dim in
  let ok = ref true in
  for _ = 1 to trials do
    let a = Matrix.random rng ~rows:n ~cols:n ~lo:(-9) ~hi:9 in
    let b = Matrix.random rng ~rows:n ~cols:n ~lo:(-9) ~hi:9 in
    if not (Matrix.equal (Bilinear.apply_once algo a b) (Matrix.mul a b)) then
      ok := false
  done;
  !ok

let pp_defect ppf d =
  let pair ppf (x, y) = Format.fprintf ppf "(%d,%d)" x y in
  Format.fprintf ppf "A%a * B%a -> C%a: got %d, expected %d" pair d.a_block pair
    d.b_block pair d.c_block d.got d.expected
