type side = { counts : int array; total : int }
type constants = { alpha : float; beta : float; gamma : float }

type profile = {
  algo : Bilinear.t;
  a : side;
  b : side;
  c : side;
  c_prime : int array;
  sparsity : int;
  overall : constants;
  a_side : constants;
  c_side : constants;
  omega : float;
  c_const : float;
}

let nonzeros row = Array.fold_left (fun n x -> if x <> 0 then n + 1 else n) 0 row

let side_of_rows rows =
  let counts = Array.map nonzeros rows in
  { counts; total = Array.fold_left ( + ) 0 counts }

let constants_of ~rank ~t2 ~s =
  let alpha = float_of_int rank /. float_of_int s in
  let beta = float_of_int s /. float_of_int t2 in
  let gamma = if alpha >= 1. then 0. else log (1. /. alpha) /. log beta in
  { alpha; beta; gamma }

let analyze (algo : Bilinear.t) =
  let t2 = algo.Bilinear.t_dim * algo.Bilinear.t_dim in
  let rank = algo.Bilinear.rank in
  if rank <= t2 then
    invalid_arg "Sparsity.analyze: requires r > T^2 (paper's standing assumption)";
  let a = side_of_rows algo.Bilinear.u in
  let b = side_of_rows algo.Bilinear.v in
  let c_prime = Array.map nonzeros algo.Bilinear.w in
  (* c_i = number of C-expressions mentioning M_i: column-wise count of w. *)
  let c_counts =
    Array.init rank (fun i ->
        Array.fold_left
          (fun n row -> if row.(i) <> 0 then n + 1 else n)
          0 algo.Bilinear.w)
  in
  let c = { counts = c_counts; total = Array.fold_left ( + ) 0 c_counts } in
  Array.iteri
    (fun i n ->
      if n = 0 then
        invalid_arg (Printf.sprintf "Sparsity.analyze: M%d uses no block of A" (i + 1)))
    a.counts;
  Array.iteri
    (fun i n ->
      if n = 0 then
        invalid_arg (Printf.sprintf "Sparsity.analyze: M%d uses no block of B" (i + 1)))
    b.counts;
  Array.iteri
    (fun j n ->
      if n = 0 then
        invalid_arg (Printf.sprintf "Sparsity.analyze: C-expression %d is empty" j))
    c_prime;
  let sparsity = max a.total (max b.total c.total) in
  let overall = constants_of ~rank ~t2 ~s:sparsity in
  let a_side = constants_of ~rank ~t2 ~s:a.total in
  let c_side = constants_of ~rank ~t2 ~s:c.total in
  let omega = Bilinear.omega algo in
  let c_const =
    if overall.gamma >= 1. then infinity
    else
      log (overall.alpha *. overall.beta)
      /. log (float_of_int algo.Bilinear.t_dim)
      /. (1. -. overall.gamma)
  in
  { algo; a; b; c; c_prime; sparsity; overall; a_side; c_side; omega; c_const }

let pp ppf p =
  Format.fprintf ppf
    "@[<v>%s: T=%d r=%d omega=%.4f@ s_A=%d s_B=%d s_C=%d s=%d@ \
     alpha=%.4f beta=%.4f gamma=%.4f c=%.4f@ c'_j=%a@]"
    p.algo.Bilinear.name p.algo.Bilinear.t_dim p.algo.Bilinear.rank p.omega
    p.a.total p.b.total p.c.total p.sparsity p.overall.alpha p.overall.beta
    p.overall.gamma p.c_const
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (Array.to_list p.c_prime)
