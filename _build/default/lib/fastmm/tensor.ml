module Checked = Tcmm_util.Checked

let product ~name (p : Bilinear.t) (q : Bilinear.t) =
  let t1 = p.Bilinear.t_dim and t2 = q.Bilinear.t_dim in
  let r1 = p.Bilinear.rank and r2 = q.Bilinear.rank in
  let t = t1 * t2 in
  let t_sq = t * t in
  let rank = r1 * r2 in
  (* Combined block (p1p2, q1q2) decomposes into factor blocks
     (p1, q1) and (p2, q2). *)
  let factor_indices j =
    let bp = j / t and bq = j mod t in
    let p1 = bp / t2 and p2 = bp mod t2 in
    let q1 = bq / t2 and q2 = bq mod t2 in
    ((p1 * t1) + q1, (p2 * t2) + q2)
  in
  let u = Array.make_matrix rank t_sq 0 in
  let v = Array.make_matrix rank t_sq 0 in
  let w = Array.make_matrix t_sq rank 0 in
  for i1 = 0 to r1 - 1 do
    for i2 = 0 to r2 - 1 do
      let i = (i1 * r2) + i2 in
      for j = 0 to t_sq - 1 do
        let j1, j2 = factor_indices j in
        u.(i).(j) <- Checked.mul p.Bilinear.u.(i1).(j1) q.Bilinear.u.(i2).(j2);
        v.(i).(j) <- Checked.mul p.Bilinear.v.(i1).(j1) q.Bilinear.v.(i2).(j2);
        w.(j).(i) <- Checked.mul p.Bilinear.w.(j1).(i1) q.Bilinear.w.(j2).(i2)
      done
    done
  done;
  Bilinear.make ~name ~t_dim:t ~u ~v ~w

let power ~name a k =
  if k < 1 then invalid_arg "Tensor.power: k < 1";
  let rec go acc k = if k = 1 then acc else go (product ~name acc a) (k - 1) in
  go a k
