lib/fastmm/sparsity.ml: Array Bilinear Format Printf
