lib/fastmm/instances.mli: Bilinear
