lib/fastmm/bilinear.mli: Format Matrix
