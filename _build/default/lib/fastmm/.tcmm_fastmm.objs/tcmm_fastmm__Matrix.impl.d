lib/fastmm/matrix.ml: Array Format Printf Tcmm_util
