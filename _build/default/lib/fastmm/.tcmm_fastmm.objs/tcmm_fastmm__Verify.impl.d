lib/fastmm/verify.ml: Array Bilinear Format List Matrix Tcmm_util
