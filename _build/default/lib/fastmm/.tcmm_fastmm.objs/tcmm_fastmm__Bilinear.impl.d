lib/fastmm/bilinear.ml: Array Format Matrix Printf Tcmm_util
