lib/fastmm/tensor.ml: Array Bilinear Tcmm_util
