lib/fastmm/orbit.ml: Array Bilinear List Printf Sparsity Tcmm_util Verify
