lib/fastmm/sparsity.mli: Bilinear Format
