lib/fastmm/verify.mli: Bilinear Format Tcmm_util
