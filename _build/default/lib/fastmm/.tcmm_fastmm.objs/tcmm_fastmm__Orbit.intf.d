lib/fastmm/orbit.mli: Bilinear
