lib/fastmm/tensor.mli: Bilinear
