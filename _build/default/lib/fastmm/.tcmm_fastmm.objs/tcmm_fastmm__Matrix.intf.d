lib/fastmm/matrix.mli: Format Tcmm_util
