lib/fastmm/instances.ml: Array Bilinear Printf Tensor
