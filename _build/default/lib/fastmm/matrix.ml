module Checked = Tcmm_util.Checked
module Prng = Tcmm_util.Prng

type t = { rows : int; cols : int; data : int array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: nonpositive dims";
  { rows; cols; data = Array.make (rows * cols) 0 }

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let rows m = m.rows
let cols m = m.cols

let check m i j name =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg (Printf.sprintf "Matrix.%s: (%d,%d) outside %dx%d" name i j m.rows m.cols)

let get m i j =
  check m i j "get";
  m.data.((i * m.cols) + j)

let set m i j v =
  check m i j "set";
  m.data.((i * m.cols) + j) <- v

let copy m = { m with data = Array.copy m.data }
let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1 else 0)

let of_rows arr =
  let rows = Array.length arr in
  if rows = 0 then invalid_arg "Matrix.of_rows: no rows";
  let cols = Array.length arr.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Matrix.of_rows: ragged rows")
    arr;
  init ~rows ~cols (fun i j -> arr.(i).(j))

let to_rows m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))
let equal a b = a.rows = b.rows && a.cols = b.cols && a.data = b.data
let map f m = { m with data = Array.map f m.data }

let same_dims a b name =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Matrix.%s: dimension mismatch" name)

let add a b =
  same_dims a b "add";
  { a with data = Array.map2 Checked.add a.data b.data }

let sub a b =
  same_dims a b "sub";
  { a with data = Array.map2 Checked.sub a.data b.data }

let scale c m = { m with data = Array.map (Checked.mul c) m.data }
let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: inner dimension mismatch";
  init ~rows:a.rows ~cols:b.cols (fun i j ->
      let acc = ref 0 in
      for k = 0 to a.cols - 1 do
        acc :=
          Checked.add !acc
            (Checked.mul a.data.((i * a.cols) + k) b.data.((k * b.cols) + j))
      done;
      !acc)

let pow a k =
  if a.rows <> a.cols then invalid_arg "Matrix.pow: non-square";
  if k < 0 then invalid_arg "Matrix.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then mul acc base else acc in
      let k = k lsr 1 in
      if k = 0 then acc else go acc (mul base base) k
  in
  go (identity a.rows) a k

let trace m =
  if m.rows <> m.cols then invalid_arg "Matrix.trace: non-square";
  let acc = ref 0 in
  for i = 0 to m.rows - 1 do
    acc := Checked.add !acc m.data.((i * m.cols) + i)
  done;
  !acc

let sub_block m ~row ~col ~rows ~cols =
  check m row col "sub_block";
  check m (row + rows - 1) (col + cols - 1) "sub_block";
  init ~rows ~cols (fun i j -> get m (row + i) (col + j))

let blit_block ~src ~dst ~row ~col =
  check dst row col "blit_block";
  check dst (row + src.rows - 1) (col + src.cols - 1) "blit_block";
  for i = 0 to src.rows - 1 do
    for j = 0 to src.cols - 1 do
      set dst (row + i) (col + j) (get src i j)
    done
  done

let random rng ~rows ~cols ~lo ~hi =
  init ~rows ~cols (fun _ _ -> Prng.int_range rng ~lo ~hi)

let max_abs m = Array.fold_left (fun acc v -> max acc (Checked.abs v)) 0 m.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%6d" (get m i j)
    done;
    Format.fprintf ppf "@]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
