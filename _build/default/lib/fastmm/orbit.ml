module Checked = Tcmm_util.Checked

let det2 m = Checked.sub (Checked.mul m.(0).(0) m.(1).(1)) (Checked.mul m.(0).(1) m.(1).(0))

let unimodular_2x2 () =
  let range = [ -1; 0; 1 ] in
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b ->
          List.concat_map
            (fun c ->
              List.filter_map
                (fun d ->
                  let m = [| [| a; b |]; [| c; d |] |] in
                  let dt = det2 m in
                  if dt = 1 || dt = -1 then Some m else None)
                range)
            range)
        range)
    range

(* Integer inverse of a unimodular matrix (adjugate over det = ±1). *)
let inverse (m : int array array) =
  let t = Array.length m in
  if t = 2 then begin
    let dt = det2 m in
    if dt <> 1 && dt <> -1 then invalid_arg "Orbit.inverse: not unimodular";
    [|
      [| dt * m.(1).(1); -dt * m.(0).(1) |];
      [| -dt * m.(1).(0); dt * m.(0).(0) |];
    |]
  end
  else invalid_arg "Orbit.inverse: only 2x2 supported"

let check_shape name m t =
  if Array.length m <> t || Array.exists (fun r -> Array.length r <> t) m then
    invalid_arg (Printf.sprintf "Orbit.transform: %s has the wrong shape" name)

let transform (algo : Bilinear.t) ~x ~y ~z =
  let t = algo.Bilinear.t_dim in
  check_shape "x" x t;
  check_shape "y" y t;
  check_shape "z" z t;
  let xinv = inverse x and yinv = inverse y and zinv = inverse z in
  let idx p q = (p * t) + q in
  (* With A = X^-1 A' Y and B = Y^-1 B' Z, the products are unchanged and
     C' = X C Z^-1:
       u'_i(r,s) = sum_{p,q} u_i(p,q) * X^-1(p,r) * Y(s,q)
       v'_i(r,s) = sum_{p,q} v_i(p,q) * Y^-1(p,r) * Z(s,q)
       w'(r,s)(i) = sum_{p,q} X(r,p) * Z^-1(q,s) * w(p,q)(i). *)
  let transform_side coeffs left right =
    Array.map
      (fun row ->
        Array.init (t * t) (fun j ->
            let r = j / t and s = j mod t in
            let acc = ref 0 in
            for p = 0 to t - 1 do
              for q = 0 to t - 1 do
                acc :=
                  Checked.add !acc
                    (Checked.mul row.(idx p q) (Checked.mul left.(p).(r) right.(s).(q)))
              done
            done;
            !acc))
      coeffs
  in
  let u = transform_side algo.Bilinear.u xinv y in
  let v = transform_side algo.Bilinear.v yinv z in
  let w =
    Array.init (t * t) (fun j ->
        let r = j / t and s = j mod t in
        Array.init algo.Bilinear.rank (fun i ->
            let acc = ref 0 in
            for p = 0 to t - 1 do
              for q = 0 to t - 1 do
                acc :=
                  Checked.add !acc
                    (Checked.mul x.(r).(p)
                       (Checked.mul zinv.(q).(s) algo.Bilinear.w.(idx p q).(i)))
              done
            done;
            !acc))
  in
  Bilinear.make ~name:(algo.Bilinear.name ^ "'") ~t_dim:t ~u ~v ~w

type search_result = {
  algorithm : Bilinear.t;
  sparsity : int;
  triples_tried : int;
  better_than_start : bool;
}

let search ?limit (algo : Bilinear.t) =
  if algo.Bilinear.t_dim <> 2 then invalid_arg "Orbit.search: only T = 2 supported";
  let start_sparsity = (Sparsity.analyze algo).Sparsity.sparsity in
  let mats = Array.of_list (unimodular_2x2 ()) in
  let best = ref algo and best_s = ref start_sparsity and tried = ref 0 in
  (try
     Array.iter
       (fun x ->
         Array.iter
           (fun y ->
             Array.iter
               (fun z ->
                 (match limit with
                 | Some l when !tried >= l -> raise Exit
                 | _ -> ());
                 incr tried;
                 let candidate = transform algo ~x ~y ~z in
                 if not (Verify.exact candidate) then
                   failwith "Orbit.search: transform produced an incorrect algorithm";
                 match Sparsity.analyze candidate with
                 | p ->
                     if p.Sparsity.sparsity < !best_s then begin
                       best := candidate;
                       best_s := p.Sparsity.sparsity
                     end
                 | exception Invalid_argument _ -> ())
               mats)
           mats)
       mats
   with Exit -> ());
  {
    algorithm = !best;
    sparsity = !best_s;
    triples_tried = !tried;
    better_than_start = !best_s < start_sparsity;
  }
