(** The symmetry orbit of a bilinear algorithm, and sparsity search.

    De Groote's theorem says every rank-7 algorithm for 2x2 matrix
    multiplication lies in one orbit under the sandwiching action: for
    invertible [X, Y, Z],

    [C = A*B  iff  X C Z^-1 = (X A Y^-1) * (Y B Z^-1)],

    so transforming an algorithm's coefficient matrices by such a triple
    yields another correct algorithm of the same rank.  Restricting to
    {e unimodular integer} matrices keeps all coefficients integral.

    The paper's gate bounds depend on the algorithm's {e sparsity}
    (Definition 2.1), which the sandwiching action changes — so searching
    the orbit for minimum sparsity is searching for better circuit
    constants.  {!search} does this exhaustively over small-entry
    unimodular triples; every transformed algorithm is re-verified
    against Brent's equations, so a wrong transformation cannot slip
    through. *)

val unimodular_2x2 : unit -> int array array list
(** All 2x2 integer matrices with entries in [{-1, 0, 1}] and determinant
    [±1] (their inverses are integral with entries in [{-1, 0, 1}] too). *)

val transform :
  Bilinear.t ->
  x:int array array ->
  y:int array array ->
  z:int array array ->
  Bilinear.t
(** Sandwich by the unimodular triple [(x, y, z)] (matrices of the
    algorithm's dimension [T]).  Raises [Invalid_argument] if a matrix is
    not unimodular or has the wrong shape. *)

type search_result = {
  algorithm : Bilinear.t;
  sparsity : int;
  triples_tried : int;
  better_than_start : bool;
}

val search : ?limit:int -> Bilinear.t -> search_result
(** Exhaustively sandwich the algorithm by triples of
    {!unimodular_2x2}-style matrices ([T = 2] only; raises
    [Invalid_argument] otherwise), tracking the minimum
    {!Sparsity.analyze} sparsity found.  [limit] (default unlimited)
    caps the number of triples for quick runs.  Every candidate is
    checked with {!Verify.exact}; a failure raises — it would indicate a
    bug in {!transform}. *)
