open Tcmm_arith
module Bilinear = Tcmm_fastmm.Bilinear
module Matrix = Tcmm_fastmm.Matrix
module Checked = Tcmm_util.Checked

(* For every relative block path of length [delta] inside a node whose
   matrix has dimension [size]: the block's (row, col) offset and the
   (coefficient, relative child path id) list of descendant matrices
   summing to it.  Total list length over all blocks is s_C^delta —
   equation (5). *)
type block_expansion = {
  row_off : int;
  col_off : int;
  children : (int * int) list;
}

let block_expansions ~(algo : Bilinear.t) ~delta ~size =
  let t_dim = algo.Bilinear.t_dim and r = algo.Bilinear.rank in
  let t2 = t_dim * t_dim in
  let result =
    Array.make (Checked.pow t2 delta)
      { row_off = 0; col_off = 0; children = [] }
  in
  let rec go level block_id row_off col_off children =
    if level = delta then result.(block_id) <- { row_off; col_off; children }
    else begin
      let sub = size / Checked.pow t_dim (level + 1) in
      for j = 0 to t2 - 1 do
        let p = j / t_dim and q = j mod t_dim in
        let children' =
          List.concat_map
            (fun (c, pid) ->
              let acc = ref [] in
              for i = r - 1 downto 0 do
                let w = algo.Bilinear.w.(j).(i) in
                if w <> 0 then acc := (Checked.mul c w, (pid * r) + i) :: !acc
              done;
              !acc)
            children
        in
        go (level + 1)
          ((block_id * t2) + j)
          (row_off + (p * sub))
          (col_off + (q * sub))
          children'
      done
    end
  in
  go 0 0 0 0 [ (1, 0) ];
  result

let combine ?share_top b ~algo ~schedule leaves =
  let t_dim = algo.Bilinear.t_dim and r = algo.Bilinear.rank in
  let levels = (schedule : Level_schedule.t).Level_schedule.levels in
  let nsteps = Array.length levels - 1 in
  let l_last = levels.(nsteps) in
  if Array.length leaves <> Checked.pow r l_last then
    invalid_arg "Combine_tree.combine: leaf count must be r^L";
  (* Current level data: per node, a flat row-major matrix of signed
     representations.  Leaves are 1x1. *)
  let current = ref (Array.map (fun s -> [| s |]) leaves) in
  let current_size = ref 1 in
  let last_sbits = ref None in
  for idx = nsteps downto 1 do
    let delta = levels.(idx) - levels.(idx - 1) in
    let size' = !current_size in
    let size = size' * Checked.pow t_dim delta in
    let exps = block_expansions ~algo ~delta ~size in
    let children_per_node = Checked.pow r delta in
    let children = !current in
    let num_parents = Array.length children / children_per_node in
    let next_sbits =
      Array.init num_parents (fun nv ->
          let matrix = Array.make (size * size) Repr.sbits_zero in
          Array.iter
            (fun { row_off; col_off; children = kids } ->
              for x = 0 to size' - 1 do
                for y = 0 to size' - 1 do
                  let terms =
                    List.map
                      (fun (c, pid) ->
                        let child = children.((nv * children_per_node) + pid) in
                        (c, child.((x * size') + y)))
                      kids
                  in
                  matrix.(((row_off + x) * size) + (col_off + y)) <-
                    Weighted_sum.signed_sum ?share_top b terms
                done
              done)
            exps;
          matrix)
    in
    last_sbits := Some next_sbits;
    current := Array.map (Array.map Repr.signed_of_sbits) next_sbits;
    current_size := size
  done;
  match !last_sbits with
  | None -> invalid_arg "Combine_tree.combine: empty schedule"
  | Some roots ->
      let n = !current_size in
      let root = roots.(0) in
      Array.init n (fun i -> Array.init n (fun j -> root.((i * n) + j)))

let reference_combine ~algo ~l products =
  let t_dim = algo.Bilinear.t_dim and r = algo.Bilinear.rank in
  if Array.length products <> Checked.pow r l then
    invalid_arg "Combine_tree.reference_combine: product count must be r^l";
  let rec go depth offset =
    let size = Checked.pow t_dim (l - depth) in
    if depth = l then Matrix.init ~rows:1 ~cols:1 (fun _ _ -> products.(offset))
    else begin
      let children = Array.init r (fun i -> go (depth + 1) ((offset * r) + i)) in
      let sub = size / t_dim in
      let result = Matrix.create ~rows:size ~cols:size in
      Array.iteri
        (fun j row ->
          let p = j / t_dim and q = j mod t_dim in
          let block = ref (Matrix.create ~rows:sub ~cols:sub) in
          Array.iteri
            (fun i c -> if c <> 0 then block := Matrix.add !block (Matrix.scale c children.(i)))
            row;
          Matrix.blit_block ~src:!block ~dst:result ~row:(p * sub) ~col:(q * sub))
        algo.Bilinear.w;
      result
    end
  in
  go 0 0
