(** Exact circuit statistics without building the circuit.

    For {- 1, 0, 1}-coefficient algorithms (all bundled instances), the
    trace circuit's structure is fully determined by a small amount of
    per-node data: every entry of a node's matrix is a weighted sum of
    the same number of parent entries, and that number depends only on
    the {e multiset} of multiplication indices along the path (the
    per-digit maps [(p, m) -> (pos_i p + neg_i m, neg_i p + pos_i m)]
    commute).  Grouping nodes by digit multiset turns the [r^L]-node tree
    into a polynomial-size dynamic program, with per-class gate/edge
    costs supplied by {!Tcmm_arith.Weighted_sum.to_bits_cost}.

    The result is {e exactly} the count a [Count_only] build would
    produce (the test suite checks this), but in time polynomial in
    [log N] — this is what lets the experiments sweep to [N = 1024] and
    beyond. *)

type totals = { gates : int; edges : int }

val trace :
  algo:Tcmm_fastmm.Bilinear.t ->
  schedule:Level_schedule.t ->
  entry_bits:int ->
  ?signed_inputs:bool ->
  ?share_top:bool ->
  n:int ->
  unit ->
  totals
(** Exact gate and edge counts of
    [Trace_circuit.build ~algo ~schedule ~entry_bits ~n] (with the same
    [share_top] setting).  Raises [Invalid_argument] if the algorithm has
    a coefficient outside [{-1, 0, 1}] (the DP's uniformity argument
    needs unit coefficients). *)

val sum_tree :
  algo:Tcmm_fastmm.Bilinear.t ->
  coeffs:int array array ->
  schedule:Level_schedule.t ->
  entry_bits:int ->
  ?signed_inputs:bool ->
  ?share_top:bool ->
  n:int ->
  unit ->
  totals
(** Exact counts of one {!Sum_tree.compute_leaves} call alone. *)
