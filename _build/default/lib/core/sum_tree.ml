open Tcmm_arith
module Bilinear = Tcmm_fastmm.Bilinear
module Matrix = Tcmm_fastmm.Matrix
module Checked = Tcmm_util.Checked

type input = Repr.signed_bits array array

let a_coeffs (algo : Bilinear.t) = algo.Bilinear.u
let b_coeffs (algo : Bilinear.t) = algo.Bilinear.v

let w_transposed_coeffs (algo : Bilinear.t) =
  Array.init algo.Bilinear.rank (fun i ->
      Array.init
        (algo.Bilinear.t_dim * algo.Bilinear.t_dim)
        (fun j -> algo.Bilinear.w.(j).(i)))

let leaf_count (algo : Bilinear.t) ~l = Checked.pow algo.Bilinear.rank l

(* For every relative multiplication path of length [delta] below a node
   whose matrix has dimension [size], the list of (coefficient, row offset,
   column offset) of the ancestor blocks that sum to the descendant's
   matrix.  Indexed by the path read as a base-r numeral (root digit most
   significant).  Total size over all paths is s^delta — equation (3). *)
let expansions ~coeffs ~t_dim ~delta ~size =
  let r = Array.length coeffs in
  let result = Array.make (Checked.pow r delta) [] in
  let rec go level path_id exp =
    if level = delta then result.(path_id) <- exp
    else begin
      let sub = size / Checked.pow t_dim (level + 1) in
      for i = 0 to r - 1 do
        let exp' =
          List.concat_map
            (fun (c, ro, co) ->
              let acc = ref [] in
              Array.iteri
                (fun j w ->
                  if w <> 0 then begin
                    let p = j / t_dim and q = j mod t_dim in
                    acc := (Checked.mul c w, ro + (p * sub), co + (q * sub)) :: !acc
                  end)
                coeffs.(i);
              List.rev !acc)
            exp
        in
        go (level + 1) ((path_id * r) + i) exp'
      done
    end
  in
  go 0 0 [ (1, 0, 0) ];
  result

let check_coeffs ~algo ~coeffs =
  let t2 = algo.Bilinear.t_dim * algo.Bilinear.t_dim in
  if Array.length coeffs <> algo.Bilinear.rank then
    invalid_arg "Sum_tree: coefficient row count must equal the rank";
  Array.iter
    (fun row ->
      if Array.length row <> t2 then
        invalid_arg "Sum_tree: coefficient row width must be T^2")
    coeffs

let compute_leaves ?share_top b ~algo ~coeffs ~schedule input =
  check_coeffs ~algo ~coeffs;
  let t_dim = algo.Bilinear.t_dim and r = algo.Bilinear.rank in
  let levels = (schedule : Level_schedule.t).Level_schedule.levels in
  let l_last = levels.(Array.length levels - 1) in
  let n = Array.length input in
  if n <> Checked.pow t_dim l_last then
    invalid_arg "Sum_tree.compute_leaves: input size must be T^L";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Sum_tree.compute_leaves: input must be square")
    input;
  (* Level 0: one node holding the input matrix, flattened row-major. *)
  let current =
    ref [| Array.init (n * n) (fun idx -> input.(idx / n).(idx mod n)) |]
  in
  let current_size = ref n in
  for idx = 1 to Array.length levels - 1 do
    let delta = levels.(idx) - levels.(idx - 1) in
    let size = !current_size in
    let size' = size / Checked.pow t_dim delta in
    let exps = expansions ~coeffs ~t_dim ~delta ~size in
    let children_per_node = Checked.pow r delta in
    let parents = !current in
    let next =
      Array.init
        (Array.length parents * children_per_node)
        (fun child_id ->
          let parent = parents.(child_id / children_per_node) in
          let path_id = child_id mod children_per_node in
          let exp = exps.(path_id) in
          Array.init (size' * size') (fun e ->
              let x = e / size' and y = e mod size' in
              let terms =
                List.map
                  (fun (c, ro, co) ->
                    let entry = parent.(((ro + x) * size) + (co + y)) in
                    (c, Repr.signed_of_sbits entry))
                  exp
              in
              Weighted_sum.signed_sum ?share_top b terms))
        (* Children of one parent share that parent's matrix; the layout
           parent-major keeps child ids equal to the base-r path value. *)
    in
    current := next;
    current_size := size'
  done;
  if !current_size <> 1 then
    invalid_arg "Sum_tree.compute_leaves: schedule does not end at the leaves";
  Array.map (fun node -> node.(0)) !current

let compute_leaves_staged b ~algo ~coeffs ~stages ~l input =
  check_coeffs ~algo ~coeffs;
  let t_dim = algo.Bilinear.t_dim in
  let n = Array.length input in
  if n <> Checked.pow t_dim l then
    invalid_arg "Sum_tree.compute_leaves_staged: input size must be T^l";
  let exps = expansions ~coeffs ~t_dim ~delta:l ~size:n in
  Array.map
    (fun exp ->
      let terms =
        List.map
          (fun (c, ro, co) -> (c, Repr.signed_of_sbits input.(ro).(co)))
          exp
      in
      Staged_sum.signed_sum b ~stages terms)
    exps

let reference_leaves ~algo ~coeffs m =
  check_coeffs ~algo ~coeffs;
  let t_dim = algo.Bilinear.t_dim in
  let acc = ref [] in
  let rec go m =
    let size = Matrix.rows m in
    if size = 1 then acc := Matrix.get m 0 0 :: !acc
    else begin
      let sub = size / t_dim in
      Array.iter
        (fun row ->
          let combined = ref (Matrix.create ~rows:sub ~cols:sub) in
          Array.iteri
            (fun j c ->
              if c <> 0 then
                let p = j / t_dim and q = j mod t_dim in
                let block =
                  Matrix.sub_block m ~row:(p * sub) ~col:(q * sub) ~rows:sub
                    ~cols:sub
                in
                combined := Matrix.add !combined (Matrix.scale c block))
            row;
          go !combined)
        coeffs
    end
  in
  go m;
  Array.of_list (List.rev !acc)
