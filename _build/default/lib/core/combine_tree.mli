(** The bottom-up product-combination tree [T_AB] (Section 4.4,
    Lemma 4.6).

    Each node of [T_AB] represents the product of the matrices at the
    corresponding nodes of [T_A] and [T_B]; the leaves are the [r^L]
    scalar products and the root is [C = AB].  Moving {e up} one selected
    level, a node's matrix is assembled from [T^(2*delta)] blocks, each a
    [w]-weighted sum of descendant matrices [delta] levels below —
    depth 2 per selected level, mirroring the top-down sum trees. *)

open Tcmm_threshold
open Tcmm_arith

val combine :
  ?share_top:bool ->
  Builder.t ->
  algo:Tcmm_fastmm.Bilinear.t ->
  schedule:Level_schedule.t ->
  Repr.signed array ->
  Repr.signed_bits array array
(** [combine b ~algo ~schedule leaves] consumes the [r^L] leaf-product
    representations (ordered by base-[r] path id, as produced by pairing
    {!Sum_tree.compute_leaves} outputs) and returns the [N x N] grid of
    binary entries of [C].  Raises [Invalid_argument] if the leaf count
    does not match the schedule. *)

val reference_combine :
  algo:Tcmm_fastmm.Bilinear.t -> l:int -> int array -> Tcmm_fastmm.Matrix.t
(** Pure-integer oracle: recombines [r^l] scalar products into the
    [T^l x T^l] result matrix using only the [w] coefficients (full
    recursion, no circuits). *)
