(** Exact matmul-circuit statistics without building the circuit.

    The matmul analogue of {!Gate_count.trace}.  Harder than the trace
    case because of the bottom-up tree [T_AB]: after a combine step the
    entries of a node's matrix are {e not} uniform — an entry's shape
    depends on which block (at every granularity the schedule touched)
    the entry sits in, and on the node's path prefix at every level.
    Both dependencies factor through {e multisets} (the per-digit sign
    maps commute, eq. (5)'s multinomial structure), so the DP keys each
    scalar by a signature: the tuple of per-level path-digit multisets
    (tree side) plus the tuple of per-combine-step block-digit multisets
    (position side).  Signature classes stay polynomial in [log N].

    Matches [Matmul_circuit.build]'s count-only statistics gate-for-gate
    and edge-for-edge (test suite), for [{-1,0,1}]-coefficient
    algorithms. *)

val matmul :
  algo:Tcmm_fastmm.Bilinear.t ->
  schedule:Level_schedule.t ->
  entry_bits:int ->
  ?signed_inputs:bool ->
  ?share_top:bool ->
  n:int ->
  unit ->
  Gate_count.totals
(** Raises [Invalid_argument] on non-unit coefficients or a schedule not
    matching [n]. *)
