open Tcmm_arith
module Bilinear = Tcmm_fastmm.Bilinear
module Checked = Tcmm_util.Checked
module Ilog = Tcmm_util.Ilog
module CU = Count_util

(* A scalar's shape: binary (part widths) after a Lemma 3.2 layer, or a
   Lemma 3.3 product representation (operand part widths). *)
type entry =
  | Bin of int * int
  | Prod of (int * int) * (int * int)

let max_exp = 62

(* #(i, j) with i < w1, j < w2 and i + j = u. *)
let conv_count w1 w2 u =
  if w1 = 0 || w2 = 0 then 0
  else
    let lo = max 0 (u - w2 + 1) and hi = min u (w1 - 1) in
    max 0 (hi - lo + 1)

(* Exponent-indexed weight counts of an entry's positive and negative
   representation parts. *)
let entry_parts = function
  | Bin (pw, nw) ->
      let pos = Array.make max_exp 0 and neg = Array.make max_exp 0 in
      for u = 0 to pw - 1 do
        pos.(u) <- 1
      done;
      for u = 0 to nw - 1 do
        neg.(u) <- 1
      done;
      (pos, neg)
  | Prod ((pa, na), (pb, nb)) ->
      let pos = Array.make max_exp 0 and neg = Array.make max_exp 0 in
      let add counts w1 w2 =
        for u = 0 to w1 + w2 - 2 do
          counts.(u) <- counts.(u) + conv_count w1 w2 u
        done
      in
      add pos pa pb;
      add pos na nb;
      add neg pa nb;
      add neg na pb;
      (pos, neg)

let multiset_of_counts counts =
  let acc = ref [] in
  for u = max_exp - 1 downto 0 do
    if counts.(u) > 0 then acc := (1 lsl u, counts.(u)) :: !acc
  done;
  !acc

let width_of_counts counts =
  let bound = ref 0 in
  Array.iteri
    (fun u c -> if c > 0 then bound := Checked.add !bound (Checked.mul c (1 lsl u)))
    counts;
  Ilog.bits !bound

let key_of_sig sig_ = String.concat "|" (List.map CU.key_of_mults sig_)

let sig_count sig_ =
  List.fold_left (fun acc m -> Checked.mul acc (CU.multinomial m)) 1 sig_

(* ------------------------------------------------------------------ *)
(* Phase 1: the two sum trees (joint over the shared path space) and   *)
(* the leaf products.  Result: leaf product shapes keyed by the tuple  *)
(* of per-level path-digit multisets.                                  *)
(* ------------------------------------------------------------------ *)

let tree_phase ~(algo : Bilinear.t) ~levels ~entry_bits ~signed_inputs ~share_top ~n
    ~gates ~edges =
  let r = algo.Bilinear.rank and t_dim = algo.Bilinear.t_dim in
  let signs_a = Array.map CU.row_signs (Sum_tree.a_coeffs algo) in
  let signs_b = Array.map CU.row_signs (Sum_tree.b_coeffs algo) in
  let init = (entry_bits, if signed_inputs then entry_bits else 0) in
  let state = ref (Hashtbl.create 16) in
  Hashtbl.replace !state "" ([], init, init, 1);
  for idx = 1 to Array.length levels - 1 do
    let delta = levels.(idx) - levels.(idx - 1) in
    let size = n / Checked.pow t_dim levels.(idx) in
    let entries = size * size in
    let next = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ (sig_, ca, cb, count) ->
        CU.iter_multisets ~r ~delta (fun ~mults ~paths ->
            let children = Checked.mul count paths in
            let scale = Checked.mul children entries in
            let advance signs (pw, nw) =
              let p, m = CU.fold_signs ~signs ~mults in
              let gp, ep =
                Weighted_sum.to_bits_cost ~share_top (CU.part_multiset ~p ~m ~pw ~nw)
              in
              let gn, en =
                Weighted_sum.to_bits_cost ~share_top (CU.part_multiset ~p:m ~m:p ~pw ~nw)
              in
              gates := Checked.add !gates (Checked.mul scale (gp + gn));
              edges := Checked.add !edges (Checked.mul scale (ep + en));
              (CU.part_width ~p ~m ~pw ~nw, CU.part_width ~p:m ~m:p ~pw ~nw)
            in
            let ca' = advance signs_a ca in
            let cb' = advance signs_b cb in
            let sig' = sig_ @ [ Array.copy mults ] in
            Hashtbl.replace next (key_of_sig sig') (sig', ca', cb', children)))
      !state;
    state := next
  done;
  (* Leaf products: signed_product2, (pa+na)(pb+nb) AND-2 gates each. *)
  let leaves = Hashtbl.create (Hashtbl.length !state) in
  Hashtbl.iter
    (fun key (sig_, (pa, na), (pb, nb), count) ->
      let product_gates = (pa + na) * (pb + nb) in
      gates := Checked.add !gates (Checked.mul count product_gates);
      edges := Checked.add !edges (Checked.mul count (2 * product_gates));
      Hashtbl.replace leaves key (sig_, ([] : int array list), Prod ((pa, na), (pb, nb))))
    !state;
  leaves

(* ------------------------------------------------------------------ *)
(* Phase 2: the bottom-up combine tree.                                *)
(* ------------------------------------------------------------------ *)

(* For a block-digit multiset (canonical order), the distribution over
   relative multiplication-path multisets of (positive, negative) sign
   counts. *)
let sign_distribution ~(algo : Bilinear.t) ~block_mults =
  let r = algo.Bilinear.rank in
  let dist = Hashtbl.create 64 in
  Hashtbl.replace dist (CU.key_of_mults (Array.make r 0)) (Array.make r 0, 1, 0);
  Array.iteri
    (fun j k ->
      for _ = 1 to k do
        let next = Hashtbl.create (Hashtbl.length dist * 4) in
        Hashtbl.iter
          (fun _ (imults, p, m) ->
            for i = 0 to r - 1 do
              let w = algo.Bilinear.w.(j).(i) in
              if w <> 0 then begin
                let imults' = Array.copy imults in
                imults'.(i) <- imults'.(i) + 1;
                let dp, dm = if w = 1 then (p, m) else (m, p) in
                let key = CU.key_of_mults imults' in
                match Hashtbl.find_opt next key with
                | None -> Hashtbl.replace next key (imults', dp, dm)
                | Some (arr, p0, m0) ->
                    Hashtbl.replace next key (arr, Checked.add p0 dp, Checked.add m0 dm)
              end
            done)
          dist;
        Hashtbl.reset dist;
        Hashtbl.iter (fun k v -> Hashtbl.replace dist k v) next
      done)
    block_mults;
  dist

let combine_phase ~(algo : Bilinear.t) ~levels ~share_top ~n ~gates ~edges leaf_state =
  let t_dim = algo.Bilinear.t_dim in
  let t2 = t_dim * t_dim in
  let state = ref leaf_state in
  for idx = Array.length levels - 1 downto 1 do
    let delta = levels.(idx) - levels.(idx - 1) in
    (* Group children by (path prefix, position signature); the last
       path-level multiset is the relative path the parent sums over. *)
    let groups = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ (tree_sig, pos_sig, entry) ->
        let rec split acc = function
          | [] -> invalid_arg "Gate_count_matmul: empty tree signature"
          | [ last ] -> (List.rev acc, last)
          | x :: rest -> split (x :: acc) rest
        in
        let prefix, last = split [] tree_sig in
        let gkey = key_of_sig prefix ^ "##" ^ key_of_sig pos_sig in
        let imap =
          match Hashtbl.find_opt groups gkey with
          | Some (_, _, imap) -> imap
          | None ->
              let imap = Hashtbl.create 64 in
              Hashtbl.replace groups gkey (prefix, pos_sig, imap);
              imap
        in
        Hashtbl.replace imap (CU.key_of_mults last) entry)
      !state;
    let next = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ (prefix, pos_sig, imap) ->
        let node_count = sig_count prefix in
        let pos_count = sig_count pos_sig in
        CU.iter_multisets ~r:t2 ~delta (fun ~mults ~paths ->
            let block_scale = Checked.mul node_count (Checked.mul paths pos_count) in
            let dist = sign_distribution ~algo ~block_mults:mults in
            let pos_counts = Array.make max_exp 0 in
            let neg_counts = Array.make max_exp 0 in
            Hashtbl.iter
              (fun ikey (_, p, m) ->
                if p <> 0 || m <> 0 then begin
                  let entry =
                    match Hashtbl.find_opt imap ikey with
                    | Some e -> e
                    | None ->
                        invalid_arg "Gate_count_matmul: missing child class"
                  in
                  let epos, eneg = entry_parts entry in
                  for u = 0 to max_exp - 1 do
                    if epos.(u) <> 0 || eneg.(u) <> 0 then begin
                      pos_counts.(u) <-
                        Checked.add pos_counts.(u)
                          (Checked.add (Checked.mul p epos.(u)) (Checked.mul m eneg.(u)));
                      neg_counts.(u) <-
                        Checked.add neg_counts.(u)
                          (Checked.add (Checked.mul m epos.(u)) (Checked.mul p eneg.(u)))
                    end
                  done
                end)
              dist;
            let gp, ep =
              Weighted_sum.to_bits_cost ~share_top (multiset_of_counts pos_counts)
            in
            let gn, en =
              Weighted_sum.to_bits_cost ~share_top (multiset_of_counts neg_counts)
            in
            gates := Checked.add !gates (Checked.mul block_scale (gp + gn));
            edges := Checked.add !edges (Checked.mul block_scale (ep + en));
            let entry' = Bin (width_of_counts pos_counts, width_of_counts neg_counts) in
            let pos_sig' = Array.copy mults :: pos_sig in
            let key = key_of_sig prefix ^ "##" ^ key_of_sig pos_sig' in
            Hashtbl.replace next key (prefix, pos_sig', entry')))
      groups;
    state := next;
    ignore n
  done

let matmul ~algo ~schedule ~entry_bits ?(signed_inputs = false) ?(share_top = false) ~n
    () =
  let t_dim = algo.Bilinear.t_dim in
  let levels = (schedule : Level_schedule.t).Level_schedule.levels in
  let l = levels.(Array.length levels - 1) in
  if Checked.pow t_dim l <> n then
    invalid_arg "Gate_count_matmul: schedule height does not match n";
  let gates = ref 0 and edges = ref 0 in
  let leaves =
    tree_phase ~algo ~levels ~entry_bits ~signed_inputs ~share_top ~n ~gates ~edges
  in
  combine_phase ~algo ~levels ~share_top ~n ~gates ~edges leaves;
  { Gate_count.gates = !gates; edges = !edges }
