open Tcmm_arith
module Bilinear = Tcmm_fastmm.Bilinear
module Checked = Tcmm_util.Checked
module Ilog = Tcmm_util.Ilog

type totals = { gates : int; edges : int }

let row_signs = Count_util.row_signs
let iter_multisets = Count_util.iter_multisets
let fold_signs ~signs ~mults = Count_util.fold_signs ~signs ~mults
let part_multiset = Count_util.part_multiset
let part_width = Count_util.part_width

(* One tree-level step of the DP.  [classes] maps (pos_width, neg_width)
   to node count; returns the child classes and adds this level's cost
   (per-entry cost times entries times nodes) to the accumulators. *)
let level_step ~share_top ~signs ~r ~delta ~entries ~classes ~gates ~edges =
  let next = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (pw, nw) count ->
      iter_multisets ~r ~delta (fun ~mults ~paths ->
          let p, m = fold_signs ~signs ~mults in
          let gp, ep = Weighted_sum.to_bits_cost ~share_top (part_multiset ~p ~m ~pw ~nw) in
          let gn, en = Weighted_sum.to_bits_cost ~share_top (part_multiset ~p:m ~m:p ~pw ~nw) in
          let children = Checked.mul count paths in
          let scale = Checked.mul children entries in
          gates := Checked.add !gates (Checked.mul scale (gp + gn));
          edges := Checked.add !edges (Checked.mul scale (ep + en));
          let wp = part_width ~p ~m ~pw ~nw in
          let wn = part_width ~p:m ~m:p ~pw ~nw in
          let key = (wp, wn) in
          Hashtbl.replace next key
            (Checked.add (try Hashtbl.find next key with Not_found -> 0) children)))
    classes;
  next

let check_schedule ~algo ~schedule ~n =
  let t_dim = algo.Bilinear.t_dim in
  let levels = (schedule : Level_schedule.t).Level_schedule.levels in
  let l = levels.(Array.length levels - 1) in
  if Checked.pow t_dim l <> n then
    invalid_arg "Gate_count: schedule height does not match n";
  levels

let tree_classes ~share_top ~algo ~coeffs ~schedule ~entry_bits ~signed_inputs ~n ~gates ~edges =
  let t_dim = algo.Bilinear.t_dim and r = algo.Bilinear.rank in
  let levels = check_schedule ~algo ~schedule ~n in
  let signs = Array.map row_signs coeffs in
  let classes = Hashtbl.create 4 in
  Hashtbl.replace classes (entry_bits, if signed_inputs then entry_bits else 0) 1;
  let current = ref classes in
  for idx = 1 to Array.length levels - 1 do
    let h = levels.(idx) in
    let delta = h - levels.(idx - 1) in
    let size = n / Checked.pow t_dim h in
    let entries = size * size in
    current := level_step ~share_top ~signs ~r ~delta ~entries ~classes:!current ~gates ~edges
  done;
  !current

let sum_tree ~algo ~coeffs ~schedule ~entry_bits ?(signed_inputs = false)
    ?(share_top = false) ~n () =
  let gates = ref 0 and edges = ref 0 in
  let _ =
    tree_classes ~share_top ~algo ~coeffs ~schedule ~entry_bits ~signed_inputs ~n
      ~gates ~edges
  in
  { gates = !gates; edges = !edges }

(* The trace circuit's three trees share the same path space, so the leaf
   classes must be tracked jointly: the state is the triple of
   (pos_width, neg_width) classes for the A-, B- and W-side trees. *)
let trace ~algo ~schedule ~entry_bits ?(signed_inputs = false)
    ?(share_top = false) ~n () =
  let t_dim = algo.Bilinear.t_dim and r = algo.Bilinear.rank in
  let levels = check_schedule ~algo ~schedule ~n in
  let signs_a = Array.map row_signs (Sum_tree.a_coeffs algo) in
  let signs_b = Array.map row_signs (Sum_tree.b_coeffs algo) in
  let signs_w = Array.map row_signs (Sum_tree.w_transposed_coeffs algo) in
  let gates = ref 0 and edges = ref 0 in
  let init = (entry_bits, if signed_inputs then entry_bits else 0) in
  let classes = Hashtbl.create 4 in
  Hashtbl.replace classes (init, init, init) 1;
  let current = ref classes in
  for idx = 1 to Array.length levels - 1 do
    let h = levels.(idx) in
    let delta = h - levels.(idx - 1) in
    let size = n / Checked.pow t_dim h in
    let entries = size * size in
    let next = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (ca, cb, cw) count ->
        iter_multisets ~r ~delta (fun ~mults ~paths ->
            let children = Checked.mul count paths in
            let scale = Checked.mul children entries in
            let advance signs (pw, nw) =
              let p, m = fold_signs ~signs ~mults in
              let gp, ep =
                Weighted_sum.to_bits_cost ~share_top (part_multiset ~p ~m ~pw ~nw)
              in
              let gn, en =
                Weighted_sum.to_bits_cost ~share_top (part_multiset ~p:m ~m:p ~pw ~nw)
              in
              gates := Checked.add !gates (Checked.mul scale (gp + gn));
              edges := Checked.add !edges (Checked.mul scale (ep + en));
              (part_width ~p ~m ~pw ~nw, part_width ~p:m ~m:p ~pw ~nw)
            in
            let key = (advance signs_a ca, advance signs_b cb, advance signs_w cw) in
            Hashtbl.replace next key
              (Checked.add (try Hashtbl.find next key with Not_found -> 0) children)))
      !current;
    current := next
  done;
  (* Leaf products (Lemma 3.3, eightfold signed expansion) and the single
     output gate reading every product term. *)
  let output_fan_in = ref 0 in
  Hashtbl.iter
    (fun ((pa, na), (pb, nb), (pw, nw)) count ->
      let product_gates = (pa + na) * (pb + nb) * (pw + nw) in
      gates := Checked.add !gates (Checked.mul count product_gates);
      edges := Checked.add !edges (Checked.mul count (3 * product_gates));
      output_fan_in := Checked.add !output_fan_in (Checked.mul count product_gates))
    !current;
  gates := Checked.add !gates 1;
  edges := Checked.add !edges !output_fan_in;
  { gates = !gates; edges = !edges }
