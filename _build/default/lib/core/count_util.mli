(** Shared machinery for the analytic-exact counting DPs
    ({!Gate_count} and {!Gate_count_matmul}).

    Internal module: the combinatorial helpers all exploit the same fact —
    the per-digit sign maps [(p, m) -> (pos_i p + neg_i m, neg_i p + pos_i m)]
    commute, so path-dependent quantities only depend on digit
    {e multisets}, which these helpers enumerate with multinomial
    weights. *)

val row_signs : int array -> int * int
(** [(#(+1), #(-1))] of a coefficient row; raises [Invalid_argument] on a
    coefficient outside [{-1,0,1}]. *)

val iter_multisets :
  r:int -> delta:int -> (mults:int array -> paths:int -> unit) -> unit
(** Enumerate digit multisets of size [delta] over [r] digits; [paths] is
    the multinomial count of paths realizing the multiset.  The [mults]
    array is reused between calls — copy it if retained. *)

val fold_signs : signs:(int * int) array -> mults:int array -> int * int
(** Starting from [(1, 0)], apply each digit's sign map with its
    multiplicity: the (positive, negative) summand counts of a
    descendant's expansion. *)

val part_multiset : p:int -> m:int -> pw:int -> nw:int -> (int * int) list
(** Weight multiset of one part of a signed sum of [p] positively- and
    [m] negatively-signed binary summands with part widths [(pw, nw)]. *)

val part_width : p:int -> m:int -> pw:int -> nw:int -> int
(** Bit width of that part's bound. *)

val key_of_mults : int array -> string
(** Canonical hash key for a multiset count array. *)

val multinomial : int array -> int
(** Number of sequences realizing a multiset given by its count array. *)
