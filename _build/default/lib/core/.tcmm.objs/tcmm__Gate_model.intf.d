lib/core/gate_model.mli: Level_schedule Tcmm_fastmm
