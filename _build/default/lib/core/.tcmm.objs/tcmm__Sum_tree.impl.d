lib/core/sum_tree.ml: Array Level_schedule List Repr Staged_sum Tcmm_arith Tcmm_fastmm Tcmm_util Weighted_sum
