lib/core/trace_circuit.mli: Builder Circuit Encode Level_schedule Repr Stats Tcmm_arith Tcmm_fastmm Tcmm_threshold Wire
