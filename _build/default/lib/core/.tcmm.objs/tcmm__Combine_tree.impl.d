lib/core/combine_tree.ml: Array Level_schedule List Repr Tcmm_arith Tcmm_fastmm Tcmm_util Weighted_sum
