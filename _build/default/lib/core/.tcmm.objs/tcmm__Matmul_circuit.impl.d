lib/core/matmul_circuit.ml: Array Builder Circuit Combine_tree Encode Level_schedule Product Repr Simulator Sum_tree Tcmm_arith Tcmm_fastmm Tcmm_threshold
