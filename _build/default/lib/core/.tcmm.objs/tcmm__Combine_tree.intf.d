lib/core/combine_tree.mli: Builder Level_schedule Repr Tcmm_arith Tcmm_fastmm Tcmm_threshold
