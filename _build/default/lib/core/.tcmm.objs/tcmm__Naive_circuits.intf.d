lib/core/naive_circuits.mli: Builder Circuit Encode Repr Tcmm_arith Tcmm_fastmm Tcmm_threshold Wire
