lib/core/gate_count.ml: Array Count_util Hashtbl Level_schedule Sum_tree Tcmm_arith Tcmm_fastmm Tcmm_util Weighted_sum
