lib/core/gate_count_matmul.mli: Gate_count Level_schedule Tcmm_fastmm
