lib/core/level_schedule.ml: Array Format Fun List Printf Tcmm_fastmm Tcmm_util
