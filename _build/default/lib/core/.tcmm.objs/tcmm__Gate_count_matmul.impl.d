lib/core/gate_count_matmul.ml: Array Count_util Gate_count Hashtbl Level_schedule List String Sum_tree Tcmm_arith Tcmm_fastmm Tcmm_util Weighted_sum
