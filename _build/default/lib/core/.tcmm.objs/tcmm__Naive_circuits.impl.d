lib/core/naive_circuits.ml: Array Builder Circuit Compare Encode List Product Repr Simulator Tcmm_arith Tcmm_fastmm Tcmm_threshold Tcmm_util Weighted_sum Wire
