lib/core/encode.ml: Array Builder Repr Tcmm_arith Tcmm_fastmm Tcmm_threshold
