lib/core/level_schedule.mli: Format Tcmm_fastmm
