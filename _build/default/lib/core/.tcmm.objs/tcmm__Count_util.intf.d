lib/core/count_util.mli:
