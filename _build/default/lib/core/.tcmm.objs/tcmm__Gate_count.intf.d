lib/core/gate_count.mli: Level_schedule Tcmm_fastmm
