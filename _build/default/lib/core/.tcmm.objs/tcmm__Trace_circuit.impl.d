lib/core/trace_circuit.ml: Array Binary Builder Circuit Compare Encode Level_schedule Product Repr Simulator Sum_tree Tcmm_arith Tcmm_fastmm Tcmm_threshold Wire
