lib/core/encode.mli: Builder Repr Tcmm_arith Tcmm_fastmm Tcmm_threshold
