lib/core/gate_model.ml: Array Level_schedule List Tcmm_fastmm Tcmm_util
