lib/core/count_util.ml: Array List String Tcmm_util
