lib/core/tiled_matmul.mli: Builder Circuit Encode Level_schedule Repr Stats Tcmm_arith Tcmm_fastmm Tcmm_threshold
