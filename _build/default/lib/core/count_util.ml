module Checked = Tcmm_util.Checked
module Ilog = Tcmm_util.Ilog

let row_signs row =
  let pos = ref 0 and neg = ref 0 in
  Array.iter
    (fun c ->
      match c with
      | 0 -> ()
      | 1 -> incr pos
      | -1 -> incr neg
      | _ ->
          invalid_arg
            "Gate_count: only {-1,0,1}-coefficient algorithms are supported")
    row;
  (!pos, !neg)

let iter_multisets ~r ~delta f =
  let mults = Array.make r 0 in
  (* C(s+k, k), exact at every step: acc holds C(s+i, i). *)
  let choose s k =
    let acc = ref 1 in
    for i = 1 to k do
      acc := Checked.mul !acc (s + i) / i
    done;
    !acc
  in
  let rec go digit remaining size paths =
    if digit = r - 1 then begin
      mults.(digit) <- remaining;
      let paths = Checked.mul paths (choose size remaining) in
      f ~mults ~paths;
      mults.(digit) <- 0
    end
    else
      for k = 0 to remaining do
        mults.(digit) <- k;
        go (digit + 1) (remaining - k) (size + k) (Checked.mul paths (choose size k));
        mults.(digit) <- 0
      done
  in
  go 0 delta 0 1

let fold_signs ~signs ~mults =
  let p = ref 1 and m = ref 0 in
  Array.iteri
    (fun digit k ->
      let pos, neg = signs.(digit) in
      for _ = 1 to k do
        let p' = Checked.add (Checked.mul pos !p) (Checked.mul neg !m) in
        let m' = Checked.add (Checked.mul neg !p) (Checked.mul pos !m) in
        p := p';
        m := m'
      done)
    mults;
  (!p, !m)

let part_multiset ~p ~m ~pw ~nw =
  let width = max pw nw in
  List.init width (fun u ->
      let mult = (if u < pw then p else 0) + if u < nw then m else 0 in
      (1 lsl u, mult))
  |> List.filter (fun (_, mult) -> mult > 0)

let part_width ~p ~m ~pw ~nw =
  Ilog.bits
    (Checked.add (Checked.mul p ((1 lsl pw) - 1)) (Checked.mul m ((1 lsl nw) - 1)))

let key_of_mults mults =
  String.concat "," (Array.to_list (Array.map string_of_int mults))

let multinomial counts =
  let choose s k =
    let acc = ref 1 in
    for i = 1 to k do
      acc := Checked.mul !acc (s + i) / i
    done;
    !acc
  in
  let total = ref 0 and acc = ref 1 in
  Array.iter
    (fun k ->
      acc := Checked.mul !acc (choose !total k);
      total := !total + k)
    counts;
  !acc
