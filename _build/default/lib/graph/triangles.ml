module Matrix = Tcmm_fastmm.Matrix

let count g =
  let n = Graph.num_vertices g in
  let total = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Graph.has_edge g i j then
        for k = j + 1 to n - 1 do
          if Graph.has_edge g i k && Graph.has_edge g j k then incr total
        done
    done
  done;
  !total

let count_via_trace g =
  let a = Graph.adjacency g in
  let t = Matrix.trace (Matrix.pow a 3) in
  if t mod 6 <> 0 then invalid_arg "Triangles.count_via_trace: trace not divisible by 6";
  t / 6

let wedges g =
  let n = Graph.num_vertices g in
  let total = ref 0 in
  for v = 0 to n - 1 do
    let d = Graph.degree g v in
    total := !total + (d * (d - 1) / 2)
  done;
  !total

let clustering_coefficient g =
  let w = wedges g in
  if w = 0 then 0. else 3. *. float_of_int (count g) /. float_of_int w

let per_vertex g =
  let n = Graph.num_vertices g in
  let counts = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Graph.has_edge g i j then
        for k = j + 1 to n - 1 do
          if Graph.has_edge g i k && Graph.has_edge g j k then begin
            counts.(i) <- counts.(i) + 1;
            counts.(j) <- counts.(j) + 1;
            counts.(k) <- counts.(k) + 1
          end
        done
    done
  done;
  counts
