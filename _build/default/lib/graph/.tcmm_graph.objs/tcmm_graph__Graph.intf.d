lib/graph/graph.mli: Tcmm_fastmm
