lib/graph/triangles.mli: Graph
