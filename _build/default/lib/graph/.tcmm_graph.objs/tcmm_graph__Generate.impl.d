lib/graph/generate.ml: Graph Tcmm_util
