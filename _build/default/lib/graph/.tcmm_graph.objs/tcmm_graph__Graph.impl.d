lib/graph/graph.ml: List Printf Set Tcmm_fastmm
