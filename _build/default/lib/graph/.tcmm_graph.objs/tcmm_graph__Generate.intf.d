lib/graph/generate.mli: Graph Tcmm_util
