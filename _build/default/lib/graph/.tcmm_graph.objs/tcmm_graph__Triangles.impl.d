lib/graph/triangles.ml: Array Graph Tcmm_fastmm
