(** Synthetic graph workloads (Section 5's social-network stand-ins).

    Real social-network traces are not available in this environment
    (see DESIGN.md's substitution table); these generators produce the
    workload classes the paper discusses: Erdos–Renyi baselines and a
    BTER-like blocked model with planted community structure (dense
    Erdos–Renyi blocks plus a sparse global background), which yields the
    high clustering coefficients the paper's Section 5 discussion turns
    on. *)

val erdos_renyi : Tcmm_util.Prng.t -> n:int -> p:float -> Graph.t
(** Each of the [n choose 2] edges present independently with
    probability [p].  Requires [0 <= p <= 1]. *)

val complete : int -> Graph.t

val blocked_community :
  Tcmm_util.Prng.t ->
  blocks:int ->
  block_size:int ->
  p_in:float ->
  p_out:float ->
  Graph.t
(** BTER-style: [blocks] communities of [block_size] vertices; edges
    inside a community with probability [p_in], across communities with
    probability [p_out].  [p_in >> p_out] gives high clustering. *)

val expected_triangles_er : n:int -> p:float -> float
(** [(n choose 3) p^3] — the Erdos–Renyi expectation used to pick
    thresholds [tau] in the experiments. *)

val expected_wedges_er : n:int -> p:float -> float
(** [3 (n choose 3) p^2]. *)
