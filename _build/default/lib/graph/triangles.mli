(** Exact triangle statistics (the combinatorial reference).

    Links the graph quantities to the matrix quantities the circuits
    compute: for an adjacency matrix [A] of a simple graph with [Delta]
    triangles, [trace(A^3) = 6 * Delta] (paper, eq. (1) and around). *)

val count : Graph.t -> int
(** Number of triangles, by direct enumeration over vertex triples. *)

val count_via_trace : Graph.t -> int
(** [trace(A^3) / 6] — must agree with {!count}; used to cross-validate
    the two references against each other. *)

val wedges : Graph.t -> int
(** Number of length-2 paths: [sum_v (deg v choose 2)] (the denominator
    of the global clustering coefficient, Section 5). *)

val clustering_coefficient : Graph.t -> float
(** [3 * triangles / wedges]; 0 when the graph has no wedges. *)

val per_vertex : Graph.t -> int array
(** Triangles through each vertex ([sum = 3 * count]). *)
