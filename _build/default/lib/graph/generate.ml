module Prng = Tcmm_util.Prng

let erdos_renyi rng ~n ~p =
  if p < 0. || p > 1. then invalid_arg "Generate.erdos_renyi: p outside [0,1]";
  let g = ref (Graph.empty n) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.float rng < p then g := Graph.add_edge !g i j
    done
  done;
  !g

let complete n =
  let g = ref (Graph.empty n) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      g := Graph.add_edge !g i j
    done
  done;
  !g

let blocked_community rng ~blocks ~block_size ~p_in ~p_out =
  if blocks < 1 || block_size < 1 then
    invalid_arg "Generate.blocked_community: nonpositive shape";
  if p_in < 0. || p_in > 1. || p_out < 0. || p_out > 1. then
    invalid_arg "Generate.blocked_community: probability outside [0,1]";
  let n = blocks * block_size in
  let g = ref (Graph.empty n) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = if i / block_size = j / block_size then p_in else p_out in
      if Prng.float rng < p then g := Graph.add_edge !g i j
    done
  done;
  !g

let choose3 n = float_of_int (n * (n - 1) * (n - 2)) /. 6.
let expected_triangles_er ~n ~p = choose3 n *. (p ** 3.)
let expected_wedges_er ~n ~p = 3. *. choose3 n *. (p ** 2.)
