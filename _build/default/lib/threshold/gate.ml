type t = { inputs : Wire.t array; weights : int array; threshold : int }

let make ~inputs ~weights ~threshold =
  if Array.length inputs <> Array.length weights then
    invalid_arg "Gate.make: inputs/weights length mismatch";
  { inputs; weights; threshold }

let fan_in g = Array.length g.inputs

let eval g read =
  let acc = ref 0 in
  for i = 0 to Array.length g.inputs - 1 do
    if read g.inputs.(i) then acc := !acc + g.weights.(i)
  done;
  !acc >= g.threshold

let eval_checked g read =
  let acc = ref 0 in
  for i = 0 to Array.length g.inputs - 1 do
    if read g.inputs.(i) then acc := Tcmm_util.Checked.add !acc g.weights.(i)
  done;
  !acc >= g.threshold

let max_abs_weight g = Array.fold_left (fun m w -> max m (abs w)) 0 g.weights

let pp ppf g =
  Format.fprintf ppf "@[<h>gate(t=%d;" g.threshold;
  Array.iteri
    (fun i w -> Format.fprintf ppf " %+d*%a" g.weights.(i) Wire.pp w)
    g.inputs;
  Format.fprintf ppf ")@]"
