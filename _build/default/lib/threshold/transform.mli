(** Circuit transformations.

    {!prune} removes gates that no output (transitively) reads — useful
    after composing constructions where some intermediate results turn
    out unused (e.g. a sum tree built for more leaves than a downstream
    consumer takes).  Wire ids are compacted; the mapping is returned so
    handles held by the caller can be translated. *)

type mapping = {
  circuit : Circuit.t;
  wire_map : int array;
      (** old wire id -> new wire id, or [-1] if the wire was removed *)
}

val prune : Circuit.t -> mapping
(** Keeps all inputs (the interface is preserved) and exactly the gates
    reachable from the outputs.  Output order is preserved. *)

val live_gates : Circuit.t -> bool array
(** Per-gate liveness (reachability from the outputs), without
    rebuilding. *)
