(** Exact evaluation of a threshold circuit.

    The simulator walks the gates in topological order, so one pass over
    the gate array (linear in the edge count) computes every wire.  It also
    records the number of gates that fire, which is the energy measure of
    Uchizawa, Douglas and Maass cited in the paper's open problems
    (Section 6). *)

type result = {
  values : Bytes.t;  (** one byte per wire: 0 or 1 *)
  outputs : bool array;  (** values of the circuit's designated outputs *)
  firings : int;  (** number of gates whose output is 1 *)
}

val run : ?check:bool -> Circuit.t -> bool array -> result
(** [run c inputs] evaluates [c] on [inputs].
    [check] (default [false]) enables overflow-checked accumulation.
    Raises [Invalid_argument] if [inputs] length differs from
    [c.num_inputs]. *)

val value : result -> Wire.t -> bool
(** [value r w] reads one wire from a result. *)

val read_outputs : Circuit.t -> bool array -> bool array
(** Convenience: [run] then return just the output values. *)
