type summary = {
  samples : int;
  mean_firings : float;
  min_firings : int;
  max_firings : int;
  gates : int;
}

let measure c inputs =
  if inputs = [] then invalid_arg "Energy.measure: no inputs";
  let total = ref 0 and mn = ref max_int and mx = ref 0 and n = ref 0 in
  List.iter
    (fun input ->
      let r = Simulator.run c input in
      total := !total + r.Simulator.firings;
      mn := min !mn r.Simulator.firings;
      mx := max !mx r.Simulator.firings;
      incr n)
    inputs;
  {
    samples = !n;
    mean_firings = float_of_int !total /. float_of_int !n;
    min_firings = !mn;
    max_firings = !mx;
    gates = Circuit.num_gates c;
  }

let random_inputs rng ~num_inputs ~samples =
  List.init samples (fun _ ->
      Array.init num_inputs (fun _ -> Tcmm_util.Prng.bool rng))

let firing_fraction s =
  if s.gates = 0 then 0. else s.mean_firings /. float_of_int s.gates

let pp ppf s =
  Format.fprintf ppf "firings: mean %.1f of %d gates (%.1f%%), range [%d, %d], %d samples"
    s.mean_firings s.gates (100. *. firing_fraction s) s.min_firings s.max_firings
    s.samples
