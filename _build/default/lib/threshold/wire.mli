(** Wire identifiers.

    A wire is either a circuit input or the output of a threshold gate;
    both live in one dense id space assigned by {!Builder} in topological
    order (a gate may only read wires with smaller ids). *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
