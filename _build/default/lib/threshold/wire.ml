type t = int

let compare = Int.compare
let equal = Int.equal
let pp ppf w = Format.fprintf ppf "w%d" w
