(** Structural validation of circuits.

    {!Circuit.make} already rejects non-topological circuits; this module
    performs the deeper well-formedness checks used by tests and by the
    CLI's [verify] command, returning all violations rather than failing
    on the first. *)

type issue =
  | Dangling_wire of { gate : int; wire : Wire.t }
  | Duplicate_input_wire of { gate : int; wire : Wire.t }
      (** a gate reading the same wire twice — legal for threshold logic
          but always a bug in this repository's constructors, which merge
          coefficients instead *)
  | Unreachable_output of { output_index : int; wire : Wire.t }
      (** an output wire that is an input: allowed, reported for review *)
  | Zero_weight of { gate : int; wire : Wire.t }
      (** a zero-weight connection — wasted edge *)

val pp_issue : Format.formatter -> issue -> unit

val check : Circuit.t -> issue list
(** All issues found, in gate order. *)

val is_clean : Circuit.t -> bool
(** [is_clean c] iff {!check} returns no issues. *)
