lib/threshold/transform.mli: Circuit
