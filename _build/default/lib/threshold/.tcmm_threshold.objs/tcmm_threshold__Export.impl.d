lib/threshold/export.ml: Array Buffer Circuit Fun Gate List Printf String
