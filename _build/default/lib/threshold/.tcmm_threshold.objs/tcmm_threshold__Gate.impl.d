lib/threshold/gate.ml: Array Format Tcmm_util Wire
