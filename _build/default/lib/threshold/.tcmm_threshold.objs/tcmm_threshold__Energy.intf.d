lib/threshold/energy.mli: Circuit Format Tcmm_util
