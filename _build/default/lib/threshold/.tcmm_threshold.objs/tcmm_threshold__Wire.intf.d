lib/threshold/wire.mli: Format
