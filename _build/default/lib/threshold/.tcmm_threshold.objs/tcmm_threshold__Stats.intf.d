lib/threshold/stats.mli: Format
