lib/threshold/circuit.ml: Array Gate Printf Stats Wire
