lib/threshold/spiking.ml: Array Bytes Circuit Gate Stats
