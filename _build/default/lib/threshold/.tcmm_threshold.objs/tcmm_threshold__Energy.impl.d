lib/threshold/energy.ml: Array Circuit Format List Simulator Tcmm_util
