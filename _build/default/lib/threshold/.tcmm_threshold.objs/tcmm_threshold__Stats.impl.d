lib/threshold/stats.ml: Array Format Printf
