lib/threshold/simulator.ml: Array Bytes Circuit Gate Printf
