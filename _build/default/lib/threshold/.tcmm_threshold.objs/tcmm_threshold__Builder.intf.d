lib/threshold/builder.mli: Circuit Stats Wire
