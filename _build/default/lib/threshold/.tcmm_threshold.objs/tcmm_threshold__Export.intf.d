lib/threshold/export.mli: Circuit
