lib/threshold/gate.mli: Format Wire
