lib/threshold/builder.ml: Array Circuit Gate List Printf Stats Tcmm_util Wire
