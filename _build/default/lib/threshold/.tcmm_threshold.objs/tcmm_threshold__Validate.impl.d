lib/threshold/validate.ml: Array Circuit Format Gate Hashtbl List Wire
