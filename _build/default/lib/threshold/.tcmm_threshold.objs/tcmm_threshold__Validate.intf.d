lib/threshold/validate.mli: Circuit Format Wire
