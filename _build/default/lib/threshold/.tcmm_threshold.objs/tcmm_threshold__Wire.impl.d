lib/threshold/wire.ml: Format Int
