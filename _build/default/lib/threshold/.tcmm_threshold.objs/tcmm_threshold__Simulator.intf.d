lib/threshold/simulator.mli: Bytes Circuit Wire
