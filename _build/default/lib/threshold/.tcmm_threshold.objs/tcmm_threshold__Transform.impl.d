lib/threshold/transform.ml: Array Circuit Gate List
