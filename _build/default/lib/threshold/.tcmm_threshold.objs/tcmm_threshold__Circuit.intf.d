lib/threshold/circuit.mli: Gate Stats Wire
