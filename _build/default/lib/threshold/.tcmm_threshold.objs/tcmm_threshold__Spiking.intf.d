lib/threshold/spiking.mli: Circuit Wire
