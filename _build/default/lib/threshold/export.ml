let to_netlist (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "tcmm-netlist 1\n";
  Buffer.add_string buf (Printf.sprintf "inputs %d\n" c.Circuit.num_inputs);
  Array.iter
    (fun (g : Gate.t) ->
      Buffer.add_string buf (Printf.sprintf "gate %d" g.Gate.threshold);
      Array.iteri
        (fun i w ->
          Buffer.add_string buf (Printf.sprintf " %d:%d" w g.Gate.weights.(i)))
        g.Gate.inputs;
      Buffer.add_char buf '\n')
    c.Circuit.gates;
  Array.iter
    (fun w -> Buffer.add_string buf (Printf.sprintf "output %d\n" w))
    c.Circuit.outputs;
  Buffer.contents buf

let of_netlist text =
  let fail lineno msg = failwith (Printf.sprintf "Export.of_netlist: line %d: %s" lineno msg) in
  let lines = String.split_on_char '\n' text in
  let num_inputs = ref None in
  let gates = ref [] in
  let outputs = ref [] in
  let parse_int lineno s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail lineno (Printf.sprintf "expected integer, got %S" s)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "tcmm-netlist"; "1" ] -> ()
        | "tcmm-netlist" :: v -> fail lineno ("unsupported version: " ^ String.concat " " v)
        | [ "inputs"; n ] ->
            if !num_inputs <> None then fail lineno "duplicate inputs line";
            num_inputs := Some (parse_int lineno n)
        | "gate" :: threshold :: terms ->
            let threshold = parse_int lineno threshold in
            let parsed =
              List.map
                (fun term ->
                  match String.split_on_char ':' term with
                  | [ w; weight ] -> (parse_int lineno w, parse_int lineno weight)
                  | _ -> fail lineno (Printf.sprintf "malformed term %S" term))
                terms
            in
            let inputs = Array.of_list (List.map fst parsed) in
            let weights = Array.of_list (List.map snd parsed) in
            gates := Gate.make ~inputs ~weights ~threshold :: !gates
        | [ "output"; w ] -> outputs := parse_int lineno w :: !outputs
        | tok :: _ -> fail lineno (Printf.sprintf "unknown directive %S" tok)
        | [] -> ())
    lines;
  match !num_inputs with
  | None -> failwith "Export.of_netlist: missing inputs line"
  | Some num_inputs ->
      Circuit.make ~num_inputs
        ~gates:(Array.of_list (List.rev !gates))
        ~outputs:(Array.of_list (List.rev !outputs))

let to_dot ?(max_gates = 2000) (c : Circuit.t) =
  if Circuit.num_gates c > max_gates then
    invalid_arg "Export.to_dot: circuit too large for DOT rendering";
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph tcmm {\n  rankdir=BT;\n";
  let output_set = Array.to_list c.Circuit.outputs in
  for i = 0 to c.Circuit.num_inputs - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  w%d [shape=box,label=\"x%d\"];\n" i i)
  done;
  Array.iteri
    (fun g (gate : Gate.t) ->
      let wire = Circuit.wire_of_gate c g in
      let shape = if List.mem wire output_set then "doublecircle" else "ellipse" in
      Buffer.add_string buf
        (Printf.sprintf "  w%d [shape=%s,label=\">=%d\"];\n" wire shape
           gate.Gate.threshold);
      Array.iteri
        (fun i src ->
          Buffer.add_string buf
            (Printf.sprintf "  w%d -> w%d [label=\"%d\"];\n" src wire
               gate.Gate.weights.(i)))
        gate.Gate.inputs)
    c.Circuit.gates;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
