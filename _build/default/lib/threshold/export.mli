(** Circuit serialization.

    Two formats:

    - a plain-text {e netlist} with one line per input/gate/output,
      lossless and re-parseable — the hand-off format for external
      (e.g. neuromorphic) toolchains;
    - GraphViz DOT for visualizing small circuits.

    Netlist grammar (line-oriented):
    {v
    tcmm-netlist 1
    inputs <n>
    gate <threshold> [<wire>:<weight>]...      # wire id = n + gate index
    output <wire>
    v} *)

val to_netlist : Circuit.t -> string

val of_netlist : string -> Circuit.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val to_dot : ?max_gates:int -> Circuit.t -> string
(** Renders inputs as boxes and gates as ellipses labelled with their
    thresholds; edges carry weights.  Raises [Invalid_argument] if the
    circuit has more than [max_gates] (default 2000) gates — DOT output
    is for small circuits only. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
