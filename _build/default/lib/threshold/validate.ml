type issue =
  | Dangling_wire of { gate : int; wire : Wire.t }
  | Duplicate_input_wire of { gate : int; wire : Wire.t }
  | Unreachable_output of { output_index : int; wire : Wire.t }
  | Zero_weight of { gate : int; wire : Wire.t }

let pp_issue ppf = function
  | Dangling_wire { gate; wire } ->
      Format.fprintf ppf "gate %d reads dangling wire %a" gate Wire.pp wire
  | Duplicate_input_wire { gate; wire } ->
      Format.fprintf ppf "gate %d reads wire %a more than once" gate Wire.pp wire
  | Unreachable_output { output_index; wire } ->
      Format.fprintf ppf "output %d is raw input wire %a" output_index Wire.pp wire
  | Zero_weight { gate; wire } ->
      Format.fprintf ppf "gate %d has zero weight on wire %a" gate Wire.pp wire

let check (c : Circuit.t) =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  Array.iteri
    (fun g (gate : Gate.t) ->
      let self = Circuit.wire_of_gate c g in
      let seen = Hashtbl.create (Array.length gate.Gate.inputs) in
      Array.iteri
        (fun i w ->
          if w < 0 || w >= self then add (Dangling_wire { gate = g; wire = w });
          if Hashtbl.mem seen w then add (Duplicate_input_wire { gate = g; wire = w })
          else Hashtbl.add seen w ();
          if gate.Gate.weights.(i) = 0 then add (Zero_weight { gate = g; wire = w }))
        gate.Gate.inputs)
    c.Circuit.gates;
  Array.iteri
    (fun i w ->
      if w < c.Circuit.num_inputs then
        add (Unreachable_output { output_index = i; wire = w }))
    c.Circuit.outputs;
  List.rev !issues

let is_clean c = check c = []
