(** A McCulloch–Pitts linear threshold gate.

    A gate with inputs [y_1 .. y_m] (booleans read from wires), integer
    weights [w_1 .. w_m] and integer threshold [t] outputs 1 iff
    [sum_i w_i * y_i >= t] (paper, Section 1). *)

type t = private {
  inputs : Wire.t array;  (** wires read by the gate *)
  weights : int array;  (** one weight per input wire *)
  threshold : int;
}

val make : inputs:Wire.t array -> weights:int array -> threshold:int -> t
(** Raises [Invalid_argument] if [inputs] and [weights] differ in length. *)

val fan_in : t -> int

val eval : t -> (Wire.t -> bool) -> bool
(** [eval g read] fires the gate against wire values supplied by [read].
    Uses unchecked native addition; see {!eval_checked}. *)

val eval_checked : t -> (Wire.t -> bool) -> bool
(** As {!eval} but accumulates with overflow checking
    (raises [Tcmm_util.Checked.Overflow]). *)

val max_abs_weight : t -> int
(** Largest weight magnitude, 0 for a fan-in-0 gate. *)

val pp : Format.formatter -> t -> unit
