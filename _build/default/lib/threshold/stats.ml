type t = {
  inputs : int;
  outputs : int;
  gates : int;
  edges : int;
  depth : int;
  max_fan_in : int;
  max_abs_weight : int;
  gates_by_depth : int array;
}

let zero =
  {
    inputs = 0;
    outputs = 0;
    gates = 0;
    edges = 0;
    depth = 0;
    max_fan_in = 0;
    max_abs_weight = 0;
    gates_by_depth = [||];
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>inputs: %d@ outputs: %d@ gates: %d@ edges: %d@ depth: %d@ \
     max fan-in: %d@ max |weight|: %d@ gates by depth: %a@]"
    s.inputs s.outputs s.gates s.edges s.depth s.max_fan_in s.max_abs_weight
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (Array.to_list s.gates_by_depth)

let to_row s =
  Printf.sprintf "gates=%d depth=%d edges=%d fan-in<=%d |w|<=%d" s.gates s.depth
    s.edges s.max_fan_in s.max_abs_weight
