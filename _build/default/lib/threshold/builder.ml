module Intvec = Tcmm_util.Intvec

type mode = Materialize | Count_only

(* Growable gate store; only used in Materialize mode. *)
module Gvec = struct
  type t = { mutable data : Gate.t array; mutable len : int }

  let dummy = Gate.make ~inputs:[||] ~weights:[||] ~threshold:0
  let create () = { data = Array.make 16 dummy; len = 0 }

  let push t g =
    if t.len = Array.length t.data then begin
      let data = Array.make (2 * t.len) dummy in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end;
    t.data.(t.len) <- g;
    t.len <- t.len + 1

  let to_array t = Array.sub t.data 0 t.len
end

type t = {
  mode : mode;
  depths : Intvec.t;  (* one entry per wire *)
  gates : Gvec.t;  (* empty in Count_only mode *)
  mutable inputs : int;
  mutable gate_count : int;
  mutable edges : int;
  mutable max_fan_in : int;
  mutable max_abs_weight : int;
  by_depth : Intvec.t;  (* gates at depth d+1 stored at index d *)
  mutable outputs_rev : Wire.t list;
  mutable n_outputs : int;
}

let create ?(mode = Materialize) () =
  {
    mode;
    depths = Intvec.create ~capacity:1024 ();
    gates = Gvec.create ();
    inputs = 0;
    gate_count = 0;
    edges = 0;
    max_fan_in = 0;
    max_abs_weight = 0;
    by_depth = Intvec.create ();
    outputs_rev = [];
    n_outputs = 0;
  }

let mode t = t.mode

let add_input t =
  if t.gate_count > 0 then
    invalid_arg "Builder.add_input: inputs must precede all gates";
  let w = t.inputs in
  t.inputs <- t.inputs + 1;
  Intvec.push t.depths 0;
  w

let add_inputs t n = Array.init n (fun _ -> add_input t)

let bump_by_depth t d =
  while Intvec.length t.by_depth < d do
    Intvec.push t.by_depth 0
  done;
  Intvec.set t.by_depth (d - 1) (Intvec.get t.by_depth (d - 1) + 1)

let add_gate t ~inputs ~weights ~threshold =
  let self = Intvec.length t.depths in
  if Array.length inputs <> Array.length weights then
    invalid_arg "Builder.add_gate: inputs/weights length mismatch";
  let d = ref 0 in
  Array.iter
    (fun w ->
      if w < 0 || w >= self then
        invalid_arg (Printf.sprintf "Builder.add_gate: dangling wire %d" w);
      d := max !d (Intvec.get t.depths w))
    inputs;
  let depth = !d + 1 in
  Intvec.push t.depths depth;
  t.gate_count <- t.gate_count + 1;
  t.edges <- t.edges + Array.length inputs;
  t.max_fan_in <- max t.max_fan_in (Array.length inputs);
  Array.iter (fun w -> t.max_abs_weight <- max t.max_abs_weight (abs w)) weights;
  bump_by_depth t depth;
  (match t.mode with
  | Materialize -> Gvec.push t.gates (Gate.make ~inputs ~weights ~threshold)
  | Count_only -> ());
  self

let add_gate_terms t ~terms ~threshold =
  let inputs = Array.of_list (List.map fst terms) in
  let weights = Array.of_list (List.map snd terms) in
  add_gate t ~inputs ~weights ~threshold

let add_shared_gates t ~inputs ~weights ~thresholds =
  let self = Intvec.length t.depths in
  if Array.length inputs <> Array.length weights then
    invalid_arg "Builder.add_shared_gates: inputs/weights length mismatch";
  let d = ref 0 in
  Array.iter
    (fun w ->
      if w < 0 || w >= self then
        invalid_arg (Printf.sprintf "Builder.add_shared_gates: dangling wire %d" w);
      d := max !d (Intvec.get t.depths w))
    inputs;
  let depth = !d + 1 in
  let fan_in = Array.length inputs in
  let count = Array.length thresholds in
  if count > 0 then begin
    Array.iter (fun w -> t.max_abs_weight <- max t.max_abs_weight (abs w)) weights;
    t.gate_count <- t.gate_count + count;
    t.edges <- t.edges + (count * fan_in);
    t.max_fan_in <- max t.max_fan_in fan_in;
    while Intvec.length t.by_depth < depth do
      Intvec.push t.by_depth 0
    done;
    Intvec.set t.by_depth (depth - 1) (Intvec.get t.by_depth (depth - 1) + count)
  end;
  Array.map
    (fun threshold ->
      let wire = Intvec.length t.depths in
      Intvec.push t.depths depth;
      (match t.mode with
      | Materialize -> Gvec.push t.gates (Gate.make ~inputs ~weights ~threshold)
      | Count_only -> ());
      wire)
    thresholds

let const t v =
  add_gate t ~inputs:[||] ~weights:[||] ~threshold:(if v then 0 else 1)

let output t w =
  if w < 0 || w >= Intvec.length t.depths then
    invalid_arg "Builder.output: dangling wire";
  t.outputs_rev <- w :: t.outputs_rev;
  t.n_outputs <- t.n_outputs + 1

let depth_of t w = Intvec.get t.depths w
let num_wires t = Intvec.length t.depths
let num_inputs t = t.inputs
let num_gates t = t.gate_count

let stats t =
  {
    Stats.inputs = t.inputs;
    outputs = t.n_outputs;
    gates = t.gate_count;
    edges = t.edges;
    depth = Intvec.length t.by_depth;
    max_fan_in = t.max_fan_in;
    max_abs_weight = t.max_abs_weight;
    gates_by_depth = Intvec.to_array t.by_depth;
  }

let finalize t =
  match t.mode with
  | Count_only -> invalid_arg "Builder.finalize: builder is in Count_only mode"
  | Materialize ->
      Circuit.make ~num_inputs:t.inputs ~gates:(Gvec.to_array t.gates)
        ~outputs:(Array.of_list (List.rev t.outputs_rev))
