type state = {
  circuit : Circuit.t;
  mutable current : Bytes.t;
  mutable next : Bytes.t;
}

let init (c : Circuit.t) inputs =
  if Array.length inputs <> c.Circuit.num_inputs then
    invalid_arg "Spiking.init: input length mismatch";
  let current = Bytes.make (Circuit.num_wires c) '\000' in
  Array.iteri (fun i v -> if v then Bytes.set current i '\001') inputs;
  { circuit = c; current; next = Bytes.copy current }

let tick st =
  let c = st.circuit in
  let read w = Bytes.unsafe_get st.current w <> '\000' in
  (* Inputs stay clamped; copy them over. *)
  Bytes.blit st.current 0 st.next 0 c.Circuit.num_inputs;
  Array.iteri
    (fun g gate ->
      Bytes.unsafe_set st.next (c.Circuit.num_inputs + g)
        (if Gate.eval gate read then '\001' else '\000'))
    c.Circuit.gates;
  let tmp = st.current in
  st.current <- st.next;
  st.next <- tmp

let value st w = Bytes.get st.current w <> '\000'

let outputs st = Array.map (value st) st.circuit.Circuit.outputs

let settle ?max_ticks (c : Circuit.t) inputs =
  let depth = (Circuit.stats c).Stats.depth in
  let max_ticks = match max_ticks with Some m -> m | None -> (4 * depth) + 16 in
  let st = init c inputs in
  let rec go t =
    let before = Bytes.copy st.current in
    tick st;
    if Bytes.equal before st.current then (t, outputs st)
    else if t >= max_ticks then failwith "Spiking.settle: no fixed point reached"
    else go (t + 1)
  in
  go 0
