(** Incremental construction of threshold circuits.

    All circuit constructors in this repository (the arithmetic circuits of
    Section 3 and the trace / matrix-product circuits of Section 4) are
    written against this builder.  It runs in one of two modes:

    - {b Materialize}: gates are stored and {!finalize} yields a
      {!Circuit.t} that can be simulated exactly.
    - {b Count_only}: gates are only tallied (count, edges, per-wire depth,
      fan-in, weight range).  This gives {i exact} structural statistics for
      circuits far too large to hold in memory — the paper's scaling claims
      are about gate counts, so the count-only sweeps are the primary
      experimental instrument.

    Constructor code is identical under both modes; only [finalize] is
    restricted to [Materialize]. *)

type mode = Materialize | Count_only

type t

val create : ?mode:mode -> unit -> t
(** [create ()] starts an empty builder in [Materialize] mode. *)

val mode : t -> mode

val add_input : t -> Wire.t
(** Appends one input wire (depth 0).  Inputs must be created before any
    gate; raises [Invalid_argument] otherwise (keeps the input block dense
    at the bottom of the wire id space). *)

val add_inputs : t -> int -> Wire.t array
(** [add_inputs b n] appends [n] input wires. *)

val add_gate : t -> inputs:Wire.t array -> weights:int array -> threshold:int -> Wire.t
(** Appends a gate reading existing wires; returns its output wire.
    Raises [Invalid_argument] on a dangling wire id or mismatched
    weight array. *)

val add_gate_terms : t -> terms:(Wire.t * int) list -> threshold:int -> Wire.t
(** Convenience form of {!add_gate} taking [(wire, weight)] pairs. *)

val add_shared_gates :
  t -> inputs:Wire.t array -> weights:int array -> thresholds:int array -> Wire.t array
(** One gate per threshold, all reading the same (physically shared)
    input/weight arrays.  Counts are identical to calling {!add_gate}
    repeatedly; the point is performance: input validation, depth and
    weight scans happen once for the whole layer instead of per gate.
    Lemma 3.1's first layer — [2^k] gates that differ only in their
    threshold — is built through this. *)

val const : t -> bool -> Wire.t
(** [const b v] is a wire carrying constant [v], built as a fan-in-0 gate
    with threshold 0 (true) or 1 (false).  Each call creates a gate;
    constructors avoid constants where a value is statically known. *)

val output : t -> Wire.t -> unit
(** Marks a wire as a circuit output (in call order). *)

val depth_of : t -> Wire.t -> int
val num_wires : t -> int
val num_inputs : t -> int
val num_gates : t -> int

val stats : t -> Stats.t
(** Exact structural statistics of the circuit built so far (both modes). *)

val finalize : t -> Circuit.t
(** Raises [Invalid_argument] in [Count_only] mode. *)
