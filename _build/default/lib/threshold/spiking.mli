(** Discrete-time (spiking) semantics.

    Neuromorphic platforms (TrueNorth, SpiNNaker, Loihi — the paper's
    Section 1 hardware) do not evaluate a DAG in topological order: every
    neuron updates {e simultaneously} once per tick from its inputs'
    previous-tick outputs.  Under that semantics a depth-[D] circuit's
    outputs are correct from tick [D] on (inputs held constant), and stay
    fixed afterwards — which is precisely the sense in which the paper's
    constant-depth circuits are "constant-time" algorithms on such
    hardware.  {!settle} measures that convergence empirically. *)

type state
(** Mutable network state: one boolean per wire. *)

val init : Circuit.t -> bool array -> state
(** All gate outputs start at 0 ("quiescent"); inputs are clamped to the
    given vector. *)

val tick : state -> unit
(** One synchronous update: every gate reads its inputs' previous values
    and fires accordingly. *)

val outputs : state -> bool array
val value : state -> Wire.t -> bool

val settle : ?max_ticks:int -> Circuit.t -> bool array -> int * bool array
(** [settle c input] ticks until the full wire state repeats (a fixed
    point — monotone convergence is {e not} assumed) and returns
    [(ticks, outputs)] where [ticks] is the first tick after which
    nothing changed.  Raises [Failure] if no fixed point is reached
    within [max_ticks] (default 4 * depth + 16; feedback-free circuits
    always settle within their depth). *)
