(** Structural complexity measures of a threshold circuit.

    These are exactly the measures the paper tracks (Section 1): size
    (gate count), depth (longest input-to-output path), edges (total
    connections) and fan-in, plus the largest weight magnitude, which
    bounds the dynamic range a neuromorphic substrate would need. *)

type t = {
  inputs : int;
  outputs : int;
  gates : int;
  edges : int;  (** total wire connections into gates *)
  depth : int;  (** 0 for a circuit with no gates *)
  max_fan_in : int;
  max_abs_weight : int;
  gates_by_depth : int array;  (** [gates_by_depth.(d-1)] = gates at depth [d] *)
}

val zero : t
(** Stats of an empty circuit. *)

val pp : Format.formatter -> t -> unit

val to_row : t -> string
(** One-line summary, used by examples and the CLI. *)
