type mapping = { circuit : Circuit.t; wire_map : int array }

let live_gates (c : Circuit.t) =
  let n_gates = Circuit.num_gates c in
  let live = Array.make n_gates false in
  let live_wire = Array.make (Circuit.num_wires c) false in
  Array.iter (fun w -> live_wire.(w) <- true) c.Circuit.outputs;
  (* Gates only read smaller wire ids, so one backwards pass suffices. *)
  for g = n_gates - 1 downto 0 do
    let wire = Circuit.wire_of_gate c g in
    if live_wire.(wire) then begin
      live.(g) <- true;
      Array.iter (fun w -> live_wire.(w) <- true) c.Circuit.gates.(g).Gate.inputs
    end
  done;
  live

let prune (c : Circuit.t) =
  let live = live_gates c in
  let wire_map = Array.make (Circuit.num_wires c) (-1) in
  for i = 0 to c.Circuit.num_inputs - 1 do
    wire_map.(i) <- i
  done;
  let kept = ref [] in
  let next = ref c.Circuit.num_inputs in
  Array.iteri
    (fun g (gate : Gate.t) ->
      if live.(g) then begin
        let inputs = Array.map (fun w -> wire_map.(w)) gate.Gate.inputs in
        kept := Gate.make ~inputs ~weights:gate.Gate.weights ~threshold:gate.Gate.threshold :: !kept;
        wire_map.(Circuit.wire_of_gate c g) <- !next;
        incr next
      end)
    c.Circuit.gates;
  let outputs = Array.map (fun w -> wire_map.(w)) c.Circuit.outputs in
  let circuit =
    Circuit.make ~num_inputs:c.Circuit.num_inputs
      ~gates:(Array.of_list (List.rev !kept))
      ~outputs
  in
  { circuit; wire_map }
