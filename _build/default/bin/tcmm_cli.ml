(* Command-line interface to the threshold-circuit matrix multiplication
   library.

   Subcommands:
     algorithms  - list bundled fast matmul algorithms with sparsity data
     stats       - exact circuit statistics for chosen parameters
     verify      - build circuits and check them against integer references
     triangles   - threshold-query triangles of a random graph *)

open Cmdliner
module F = Tcmm_fastmm
module T = Tcmm
module Tb = Tcmm_util.Tablefmt

let algo_by_name name =
  let all = F.Instances.all () in
  match List.find_opt (fun a -> a.F.Bilinear.name = name) all with
  | Some a -> Ok a
  | None ->
      Error
        (Printf.sprintf "unknown algorithm %S (try: %s)" name
           (String.concat ", " (List.map (fun a -> a.F.Bilinear.name) all)))

let algo_arg =
  let parse s = match algo_by_name s with Ok a -> Ok a | Error e -> Error (`Msg e) in
  let print ppf a = Format.fprintf ppf "%s" a.F.Bilinear.name in
  Arg.conv (parse, print)

let algo_term =
  Arg.(
    value
    & opt algo_arg F.Instances.strassen
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc:"Fast matmul algorithm to compile.")

let n_term =
  Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Matrix dimension (a power of the algorithm's T).")

let d_term =
  Arg.(
    value
    & opt int 2
    & info [ "d" ] ~docv:"D" ~doc:"Theorem 4.5 depth parameter (d >= 1).")

let bits_term =
  Arg.(value & opt int 1 & info [ "b"; "bits" ] ~docv:"BITS" ~doc:"Bits per entry.")

let schedule_term =
  Arg.(
    value
    & opt string "thm45"
    & info [ "s"; "schedule" ] ~docv:"SCHED"
        ~doc:"Level schedule: thm44, thm45, full, direct, or uniform-K.")

let seed_term =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let resolve_schedule ~algo ~name ~d ~n =
  let t_dim = algo.F.Bilinear.t_dim in
  let l = T.Level_schedule.height ~t_dim ~n in
  let profile = F.Sparsity.analyze algo in
  match name with
  | "thm45" -> T.Level_schedule.theorem45 ~profile ~d ~n
  | "thm44" ->
      T.Level_schedule.theorem44 ~gamma:profile.F.Sparsity.overall.F.Sparsity.gamma
        ~t_dim ~n
  | "full" -> T.Level_schedule.full ~l
  | "direct" -> T.Level_schedule.direct ~l
  | s when String.length s > 8 && String.sub s 0 8 = "uniform-" ->
      T.Level_schedule.uniform ~steps:(int_of_string (String.sub s 8 (String.length s - 8))) ~l
  | s -> failwith (Printf.sprintf "unknown schedule %S" s)

(* ------------------------------------------------------------------ *)

let algorithms_cmd =
  let run () =
    let rows =
      List.filter_map
        (fun algo ->
          match F.Sparsity.analyze algo with
          | p ->
              Some
                [
                  Tb.Str algo.F.Bilinear.name;
                  Tb.Int algo.F.Bilinear.t_dim;
                  Tb.Int algo.F.Bilinear.rank;
                  Tb.Float p.F.Sparsity.omega;
                  Tb.Int p.F.Sparsity.a.F.Sparsity.total;
                  Tb.Int p.F.Sparsity.b.F.Sparsity.total;
                  Tb.Int p.F.Sparsity.c.F.Sparsity.total;
                  Tb.Float p.F.Sparsity.overall.F.Sparsity.alpha;
                  Tb.Float p.F.Sparsity.overall.F.Sparsity.beta;
                  Tb.Float p.F.Sparsity.overall.F.Sparsity.gamma;
                  Tb.Float p.F.Sparsity.c_const;
                ]
          | exception Invalid_argument _ -> None)
        (F.Instances.all ())
    in
    Tb.print ~title:"Bundled fast matrix multiplication algorithms (Definition 2.1)"
      ~header:[ "name"; "T"; "r"; "omega"; "s_A"; "s_B"; "s_C"; "alpha"; "beta"; "gamma"; "c" ]
      ~rows;
    0
  in
  Cmd.v (Cmd.info "algorithms" ~doc:"List bundled algorithms and their sparsity profiles.")
    Term.(const run $ const ())

let stats_cmd =
  let run algo n d bits sched =
    let schedule = resolve_schedule ~algo ~name:sched ~d ~n in
    Format.printf "schedule: %a@." T.Level_schedule.pp schedule;
    let trace =
      T.Trace_circuit.build ~mode:Tcmm_threshold.Builder.Count_only ~algo ~schedule
        ~entry_bits:bits ~tau:1 ~n ()
    in
    let matmul =
      T.Matmul_circuit.build ~mode:Tcmm_threshold.Builder.Count_only ~algo ~schedule
        ~entry_bits:bits ~n ()
    in
    let row name (s : Tcmm_threshold.Stats.t) =
      [
        Tb.Str name; Tb.Int s.gates; Tb.Int s.depth; Tb.Int s.edges;
        Tb.Int s.max_fan_in; Tb.Int s.max_abs_weight;
      ]
    in
    Tb.print
      ~title:(Printf.sprintf "Exact circuit statistics (N=%d, %s, %d-bit entries)" n
                algo.F.Bilinear.name bits)
      ~header:[ "circuit"; "gates"; "depth"; "edges"; "fan-in"; "|w|max" ]
      ~rows:[ row "trace(A^3) >= tau" (T.Trace_circuit.stats trace);
              row "C = A*B" (T.Matmul_circuit.stats matmul) ];
    0
  in
  Cmd.v (Cmd.info "stats" ~doc:"Exact gate/depth/edge counts for chosen parameters.")
    Term.(const run $ algo_term $ n_term $ d_term $ bits_term $ schedule_term)

let verify_cmd =
  let run algo n d bits sched seed =
    let schedule = resolve_schedule ~algo ~name:sched ~d ~n in
    let rng = Tcmm_util.Prng.create ~seed in
    let hi = (1 lsl bits) - 1 in
    let a = F.Matrix.random rng ~rows:n ~cols:n ~lo:(-hi) ~hi in
    let b = F.Matrix.random rng ~rows:n ~cols:n ~lo:(-hi) ~hi in
    Format.printf "building C = A*B circuit (N=%d, %s, schedule %a)...@." n
      algo.F.Bilinear.name T.Level_schedule.pp schedule;
    let built =
      T.Matmul_circuit.build ~algo ~schedule ~signed_inputs:true ~entry_bits:bits ~n ()
    in
    Format.printf "circuit: %s@."
      (Tcmm_threshold.Stats.to_row (T.Matmul_circuit.stats built));
    let c = T.Matmul_circuit.run built ~a ~b in
    let ok_mm = F.Matrix.equal c (F.Matrix.mul a b) in
    Format.printf "matmul circuit matches reference: %b@." ok_mm;
    let m = F.Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi in
    let expect = T.Trace_circuit.reference m in
    let trace = T.Trace_circuit.build ~algo ~schedule ~entry_bits:bits ~tau:expect ~n () in
    let ok_tr = T.Trace_circuit.trace_value trace m = expect && T.Trace_circuit.run trace m in
    Format.printf "trace circuit matches reference: %b@." ok_tr;
    if ok_mm && ok_tr then 0 else 1
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Build circuits and check them against integer references.")
    Term.(const run $ algo_term $ n_term $ d_term $ bits_term $ schedule_term $ seed_term)

let triangles_cmd =
  let run n d p tau seed =
    let rng = Tcmm_util.Prng.create ~seed in
    let g = Tcmm_graph.Generate.erdos_renyi rng ~n ~p in
    let exact = Tcmm_graph.Triangles.count g in
    Format.printf "G(n=%d, p=%.2f): %d edges, %d triangles, clustering %.3f@." n p
      (Tcmm_graph.Graph.num_edges g) exact
      (Tcmm_graph.Triangles.clustering_coefficient g);
    let algo = F.Instances.strassen in
    let profile = F.Sparsity.analyze algo in
    let schedule = T.Level_schedule.theorem45 ~profile ~d ~n in
    let built = T.Trace_circuit.build ~algo ~schedule ~entry_bits:1 ~tau:(6 * tau) ~n () in
    let fires = T.Trace_circuit.run built (Tcmm_graph.Graph.adjacency g) in
    Format.printf "circuit (depth %d, %s): at least %d triangles? %b (truth: %b)@."
      (T.Gate_model.trace_depth schedule)
      (Tcmm_threshold.Stats.to_row (T.Trace_circuit.stats built))
      tau fires (exact >= tau);
    if fires = (exact >= tau) then 0 else 1
  in
  let p_term =
    Arg.(value & opt float 0.3 & info [ "p" ] ~docv:"P" ~doc:"Edge probability.")
  in
  let tau_term =
    Arg.(value & opt int 5 & info [ "t"; "tau" ] ~docv:"TAU" ~doc:"Triangle threshold.")
  in
  Cmd.v
    (Cmd.info "triangles" ~doc:"Threshold-query the triangle count of a random graph.")
    Term.(const run $ n_term $ d_term $ p_term $ tau_term $ seed_term)

let export_cmd =
  let run algo n d bits sched kind path =
    let schedule = resolve_schedule ~algo ~name:sched ~d ~n in
    let built =
      T.Trace_circuit.build ~algo ~schedule ~entry_bits:bits ~tau:1 ~n ()
    in
    match built.T.Trace_circuit.circuit with
    | None -> 1
    | Some c ->
        let contents =
          match kind with
          | "netlist" -> Tcmm_threshold.Export.to_netlist c
          | "dot" -> Tcmm_threshold.Export.to_dot ~max_gates:100000 c
          | k -> failwith (Printf.sprintf "unknown format %S (netlist|dot)" k)
        in
        Tcmm_threshold.Export.write_file path contents;
        Format.printf "wrote %s (%s, %s)@." path kind
          (Tcmm_threshold.Stats.to_row (T.Trace_circuit.stats built));
        0
  in
  let kind_term =
    Arg.(value & opt string "netlist" & info [ "f"; "format" ] ~docv:"FMT" ~doc:"netlist or dot.")
  in
  let path_term =
    Arg.(value & opt string "circuit.tcmm" & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Build a trace circuit and write it as a netlist or GraphViz DOT file.")
    Term.(const run $ algo_term $ n_term $ d_term $ bits_term $ schedule_term $ kind_term $ path_term)

let orbit_cmd =
  let run algo limit =
    (match F.Sparsity.analyze algo with
    | p -> Format.printf "start: %s, sparsity %d@." algo.F.Bilinear.name p.F.Sparsity.sparsity
    | exception Invalid_argument _ -> ());
    let r =
      match limit with
      | 0 -> F.Orbit.search algo
      | l -> F.Orbit.search ~limit:l algo
    in
    Format.printf
      "searched %d unimodular sandwiching triples; best sparsity in orbit: %d (%s)@."
      r.F.Orbit.triples_tried r.F.Orbit.sparsity
      (if r.F.Orbit.better_than_start then "improved" else "no improvement");
    if r.F.Orbit.better_than_start then
      Format.printf "improved algorithm:@.%a@." F.Bilinear.pp r.F.Orbit.algorithm;
    0
  in
  let limit_term =
    Arg.(value & opt int 0 & info [ "limit" ] ~docv:"K" ~doc:"Cap triples (0 = exhaustive).")
  in
  Cmd.v
    (Cmd.info "orbit"
       ~doc:"Search the algorithm's unimodular sandwiching orbit for minimum sparsity.")
    Term.(const run $ algo_term $ limit_term)

let () =
  let doc = "Constant-depth threshold circuits for matrix multiplication (SPAA 2018)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "tcmm" ~doc)
          [ algorithms_cmd; stats_cmd; verify_cmd; triangles_cmd; export_cmd; orbit_cmd ]))
