open Tcmm
open Tcmm_fastmm
open Tcmm_threshold
open Tcmm_arith
module S = Tcmm_test_support.Support
module Prng = Tcmm_util.Prng

let strassen = Instances.strassen

(* ------------------------------------------------------------------ *)
(* Level_schedule                                                     *)
(* ------------------------------------------------------------------ *)

let levels s = (s : Level_schedule.t).Level_schedule.levels

let test_schedule_of_levels_validation () =
  let attempt ls =
    try
      ignore (Level_schedule.of_levels ~description:"x" ls);
      Alcotest.fail "expected invalid_arg"
    with Invalid_argument _ -> ()
  in
  attempt [||];
  attempt [| 1; 2 |];
  attempt [| 0; 2; 2 |];
  attempt [| 0; 3; 1 |];
  Alcotest.(check (array int)) "valid" [| 0; 2; 5 |]
    (levels (Level_schedule.of_levels ~description:"ok" [| 0; 2; 5 |]))

let test_schedule_shapes () =
  Alcotest.(check (array int)) "full" [| 0; 1; 2; 3 |] (levels (Level_schedule.full ~l:3));
  Alcotest.(check (array int)) "direct" [| 0; 4 |] (levels (Level_schedule.direct ~l:4));
  Alcotest.(check (array int)) "uniform 2 of 4" [| 0; 2; 4 |]
    (levels (Level_schedule.uniform ~steps:2 ~l:4));
  Alcotest.(check (array int)) "uniform 3 of 4" [| 0; 2; 3; 4 |]
    (levels (Level_schedule.uniform ~steps:3 ~l:4));
  Alcotest.(check (array int)) "uniform clamps steps" [| 0; 1; 2 |]
    (levels (Level_schedule.uniform ~steps:5 ~l:2));
  S.check_int "steps" 2 (Level_schedule.steps (Level_schedule.uniform ~steps:2 ~l:4))

let test_schedule_height () =
  S.check_int "2^5" 5 (Level_schedule.height ~t_dim:2 ~n:32);
  S.check_int "3^2" 2 (Level_schedule.height ~t_dim:3 ~n:9);
  try
    ignore (Level_schedule.height ~t_dim:2 ~n:12);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let schedule_invariants name s ~l ~max_steps =
  let ls = levels s in
  S.check_int (name ^ " starts at 0") 0 ls.(0);
  S.check_int (name ^ " ends at L") l ls.(Array.length ls - 1);
  for i = 1 to Array.length ls - 1 do
    S.check_bool (name ^ " strictly increasing") true (ls.(i) > ls.(i - 1))
  done;
  S.check_bool
    (Printf.sprintf "%s steps %d <= %d" name (Level_schedule.steps s) max_steps)
    true
    (Level_schedule.steps s <= max_steps)

let test_schedule_geometric () =
  let gamma = 0.491 in
  (* rho = l: Theorem 4.4's setting. *)
  List.iter
    (fun l ->
      let s = Level_schedule.geometric ~gamma ~rho:(float_of_int l) ~l in
      schedule_invariants "geometric" s ~l ~max_steps:l)
    [ 1; 2; 3; 5; 8; 13 ];
  (* gamma = 0 degenerates to a direct jump. *)
  Alcotest.(check (array int)) "gamma 0" [| 0; 4 |]
    (levels (Level_schedule.geometric ~gamma:0. ~rho:4. ~l:4));
  (* Invalid parameters. *)
  List.iter
    (fun (gamma, rho) ->
      try
        ignore (Level_schedule.geometric ~gamma ~rho ~l:4);
        Alcotest.fail "expected invalid_arg"
      with Invalid_argument _ -> ())
    [ (-0.1, 4.); (1.0, 4.); (0.5, 0.) ]

let test_schedule_theorem44 () =
  let profile = Sparsity.analyze strassen in
  let gamma = profile.Sparsity.overall.Sparsity.gamma in
  List.iter
    (fun n ->
      let l = Level_schedule.height ~t_dim:2 ~n in
      let s = Level_schedule.theorem44 ~gamma ~t_dim:2 ~n in
      (* t = floor(log_{1/gamma} log_T N) + 1 per the theorem. *)
      let bound =
        int_of_float (floor (log (float_of_int l) /. log (1. /. gamma))) + 1
      in
      schedule_invariants "thm44" s ~l ~max_steps:(max bound 1))
    [ 4; 16; 64; 256; 1024 ]

let test_schedule_theorem45 () =
  let profile = Sparsity.analyze strassen in
  List.iter
    (fun n ->
      List.iter
        (fun d ->
          let l = Level_schedule.height ~t_dim:2 ~n in
          let s = Level_schedule.theorem45 ~profile ~d ~n in
          schedule_invariants (Printf.sprintf "thm45 d=%d n=%d" d n) s ~l ~max_steps:d)
        [ 1; 2; 3; 4 ])
    [ 4; 16; 64; 256 ];
  try
    ignore (Level_schedule.theorem45 ~profile:(Sparsity.analyze strassen) ~d:0 ~n:4);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_schedule_theorem45_winograd_and_naive () =
  (* Other sparsity profiles produce valid schedules too. *)
  List.iter
    (fun algo ->
      let profile = Sparsity.analyze algo in
      let s = Level_schedule.theorem45 ~profile ~d:2 ~n:16 in
      schedule_invariants algo.Bilinear.name s ~l:4 ~max_steps:2)
    [ Instances.winograd; Instances.naive ~t_dim:2 ]

(* ------------------------------------------------------------------ *)
(* Encode                                                             *)
(* ------------------------------------------------------------------ *)

let test_encode_roundtrip_unsigned () =
  let b = Builder.create () in
  let layout = Encode.alloc b ~n:2 ~entry_bits:3 ~signed:false in
  let m = Matrix.of_rows [| [| 0; 7 |]; [| 3; 5 |] |] in
  let input = Array.make (Encode.total_wires layout) false in
  Encode.write layout m input;
  let grid = Encode.grid layout in
  let read w = input.(w) in
  for i = 0 to 1 do
    for j = 0 to 1 do
      S.check_int
        (Printf.sprintf "entry %d %d" i j)
        (Matrix.get m i j)
        (Repr.eval_sbits read grid.(i).(j))
    done
  done

let test_encode_roundtrip_signed () =
  let b = Builder.create () in
  let layout = Encode.alloc b ~n:2 ~entry_bits:3 ~signed:true in
  let m = Matrix.of_rows [| [| -7; 0 |]; [| 3; -1 |] |] in
  let input = Array.make (Encode.total_wires layout) false in
  Encode.write layout m input;
  let grid = Encode.grid layout in
  let read w = input.(w) in
  for i = 0 to 1 do
    for j = 0 to 1 do
      S.check_int
        (Printf.sprintf "entry %d %d" i j)
        (Matrix.get m i j)
        (Repr.eval_sbits read grid.(i).(j))
    done
  done

let test_encode_transposed_grid () =
  let b = Builder.create () in
  let layout = Encode.alloc b ~n:2 ~entry_bits:2 ~signed:false in
  let m = Matrix.of_rows [| [| 1; 2 |]; [| 3; 0 |] |] in
  let input = Array.make (Encode.total_wires layout) false in
  Encode.write layout m input;
  let tg = Encode.transposed_grid layout in
  let read w = input.(w) in
  S.check_int "transposed (0,1) = m(1,0)" 3 (Repr.eval_sbits read tg.(0).(1))

let test_encode_rejections () =
  let b = Builder.create () in
  let layout = Encode.alloc b ~n:2 ~entry_bits:2 ~signed:false in
  let input = Array.make (Encode.total_wires layout) false in
  (try
     Encode.write layout (Matrix.of_rows [| [| -1; 0 |]; [| 0; 0 |] |]) input;
     Alcotest.fail "expected invalid_arg on negative"
   with Invalid_argument _ -> ());
  (try
     Encode.write layout (Matrix.of_rows [| [| 4; 0 |]; [| 0; 0 |] |]) input;
     Alcotest.fail "expected invalid_arg on overflow"
   with Invalid_argument _ -> ());
  try
    Encode.write layout (Matrix.identity 3) input;
    Alcotest.fail "expected invalid_arg on dims"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Sum_tree                                                           *)
(* ------------------------------------------------------------------ *)

let check_sum_tree ~algo ~coeffs ~schedule ~n ~signed ~seed ~transpose () =
  let rng = Prng.create ~seed in
  let lo = if signed then -3 else 0 in
  let m = Matrix.random rng ~rows:n ~cols:n ~lo ~hi:3 in
  let b = Builder.create () in
  let layout = Encode.alloc b ~n ~entry_bits:2 ~signed in
  let grid = if transpose then Encode.transposed_grid layout else Encode.grid layout in
  let leaves = Sum_tree.compute_leaves b ~algo ~coeffs ~schedule grid in
  let c = Builder.finalize b in
  let input = Array.make (Encode.total_wires layout) false in
  Encode.write layout m input;
  let r = Simulator.run ~check:true c input in
  let reference =
    Sum_tree.reference_leaves ~algo ~coeffs (if transpose then Matrix.transpose m else m)
  in
  S.check_int "leaf count" (Array.length reference) (Array.length leaves);
  Array.iteri
    (fun k sb ->
      S.check_int
        (Printf.sprintf "leaf %d" k)
        reference.(k)
        (Repr.eval_sbits (Simulator.value r) sb))
    leaves

let test_sum_tree_strassen_full () =
  check_sum_tree ~algo:strassen ~coeffs:(Sum_tree.a_coeffs strassen)
    ~schedule:(Level_schedule.full ~l:2) ~n:4 ~signed:false ~seed:11 ~transpose:false ()

let test_sum_tree_strassen_direct () =
  check_sum_tree ~algo:strassen ~coeffs:(Sum_tree.a_coeffs strassen)
    ~schedule:(Level_schedule.direct ~l:2) ~n:4 ~signed:true ~seed:12 ~transpose:false ()

let test_sum_tree_strassen_b_side () =
  check_sum_tree ~algo:strassen ~coeffs:(Sum_tree.b_coeffs strassen)
    ~schedule:(Level_schedule.full ~l:2) ~n:4 ~signed:true ~seed:13 ~transpose:false ()

let test_sum_tree_w_side_transposed () =
  check_sum_tree ~algo:strassen ~coeffs:(Sum_tree.w_transposed_coeffs strassen)
    ~schedule:(Level_schedule.full ~l:2) ~n:4 ~signed:false ~seed:14 ~transpose:true ()

let test_sum_tree_uniform_8 () =
  check_sum_tree ~algo:strassen ~coeffs:(Sum_tree.a_coeffs strassen)
    ~schedule:(Level_schedule.uniform ~steps:2 ~l:3) ~n:8 ~signed:false ~seed:15
    ~transpose:false ()

let test_sum_tree_naive3 () =
  let algo = Instances.naive ~t_dim:3 in
  check_sum_tree ~algo ~coeffs:(Sum_tree.a_coeffs algo)
    ~schedule:(Level_schedule.full ~l:1) ~n:3 ~signed:true ~seed:16 ~transpose:false ()

let test_sum_tree_winograd () =
  check_sum_tree ~algo:Instances.winograd ~coeffs:(Sum_tree.a_coeffs Instances.winograd)
    ~schedule:(Level_schedule.full ~l:2) ~n:4 ~signed:true ~seed:17 ~transpose:false ()

let test_sum_tree_depth () =
  let b = Builder.create () in
  let layout = Encode.alloc b ~n:4 ~entry_bits:1 ~signed:false in
  let schedule = Level_schedule.full ~l:2 in
  let leaves =
    Sum_tree.compute_leaves b ~algo:strassen ~coeffs:(Sum_tree.a_coeffs strassen)
      ~schedule (Encode.grid layout)
  in
  Array.iter
    (fun (sb : Repr.signed_bits) ->
      Array.iter
        (fun w -> S.check_bool "leaf depth <= 2*steps" true (Builder.depth_of b w <= 4))
        (Array.append sb.Repr.pos_bits sb.Repr.neg_bits))
    leaves

let test_sum_tree_rejects_bad_input () =
  let b = Builder.create () in
  let layout = Encode.alloc b ~n:4 ~entry_bits:1 ~signed:false in
  (* Schedule height 3 => expects 8x8 input, got 4x4. *)
  try
    ignore
      (Sum_tree.compute_leaves b ~algo:strassen ~coeffs:(Sum_tree.a_coeffs strassen)
         ~schedule:(Level_schedule.full ~l:3) (Encode.grid layout));
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_sum_tree_rejects_bad_coeffs () =
  let b = Builder.create () in
  let layout = Encode.alloc b ~n:4 ~entry_bits:1 ~signed:false in
  try
    ignore
      (Sum_tree.compute_leaves b ~algo:strassen ~coeffs:[| [| 1 |] |]
         ~schedule:(Level_schedule.full ~l:2) (Encode.grid layout));
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_reference_leaves_strassen_2x2 () =
  (* Hand-checked: leaves of T_A at N = 2 are the 7 sums of Figure 1. *)
  let m = Matrix.of_rows [| [| 1; 2 |]; [| 3; 4 |] |] in
  let leaves = Sum_tree.reference_leaves ~algo:strassen ~coeffs:(Sum_tree.a_coeffs strassen) m in
  (* M1: A11 = 1; M2: A21+A22 = 7; M3: A11+A22 = 5; M4: A22 = 4;
     M5: A11+A12 = 3; M6: A21-A11 = 2; M7: A12-A22 = -2. *)
  Alcotest.(check (array int)) "figure 1 sums" [| 1; 7; 5; 4; 3; 2; -2 |] leaves

(* ------------------------------------------------------------------ *)
(* Combine_tree                                                       *)
(* ------------------------------------------------------------------ *)

let test_reference_combine_recovers_product () =
  (* Pure-integer pipeline: leaf sums of A and B, multiplied pairwise,
     recombined via w — must equal A*B (this is the fast algorithm run
     by hand through the tree machinery). *)
  let rng = Prng.create ~seed:21 in
  List.iter
    (fun (algo, n) ->
      let l = Level_schedule.height ~t_dim:algo.Bilinear.t_dim ~n in
      let a = Matrix.random rng ~rows:n ~cols:n ~lo:(-4) ~hi:4 in
      let b = Matrix.random rng ~rows:n ~cols:n ~lo:(-4) ~hi:4 in
      let la = Sum_tree.reference_leaves ~algo ~coeffs:(Sum_tree.a_coeffs algo) a in
      let lb = Sum_tree.reference_leaves ~algo ~coeffs:(Sum_tree.b_coeffs algo) b in
      let products = Array.map2 ( * ) la lb in
      let c = Combine_tree.reference_combine ~algo ~l products in
      S.check_bool
        (Printf.sprintf "%s n=%d" algo.Bilinear.name n)
        true
        (Matrix.equal c (Matrix.mul a b)))
    [ (strassen, 2); (strassen, 4); (strassen, 8); (Instances.winograd, 4);
      (Instances.naive ~t_dim:2, 4); (Instances.naive ~t_dim:3, 9) ]

let test_combine_rejects_wrong_leaf_count () =
  let b = Builder.create () in
  try
    ignore
      (Combine_tree.combine b ~algo:strassen ~schedule:(Level_schedule.full ~l:2)
         (Array.make 7 Repr.signed_zero));
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Trace_circuit                                                      *)
(* ------------------------------------------------------------------ *)

let test_trace_exhaustive_2x2_binary () =
  (* All 16 binary 2x2 matrices, thresholds around the true trace. *)
  let schedule = Level_schedule.full ~l:1 in
  for mask = 0 to 15 do
    let m = Matrix.init ~rows:2 ~cols:2 (fun i j -> (mask lsr ((2 * i) + j)) land 1) in
    let expect = Trace_circuit.reference m in
    List.iter
      (fun tau ->
        let built =
          Trace_circuit.build ~algo:strassen ~schedule ~entry_bits:1 ~tau ~n:2 ()
        in
        S.check_bool
          (Printf.sprintf "mask=%d tau=%d" mask tau)
          (expect >= tau) (Trace_circuit.run built m))
      [ expect - 1; expect; expect + 1 ]
  done

let check_trace ~algo ~schedule ~n ~entry_bits ~signed ~seed () =
  let rng = Prng.create ~seed in
  let lo = if signed then -((1 lsl entry_bits) - 1) else 0 in
  let m = Matrix.random rng ~rows:n ~cols:n ~lo ~hi:((1 lsl entry_bits) - 1) in
  let expect = Trace_circuit.reference m in
  let built =
    Trace_circuit.build ~algo ~schedule ~signed_inputs:signed ~entry_bits ~tau:expect
      ~n ()
  in
  S.check_int "trace value" expect (Trace_circuit.trace_value built m);
  S.check_bool "boundary fires" true (Trace_circuit.run built m)

let test_trace_strassen_4 () =
  check_trace ~algo:strassen ~schedule:(Level_schedule.full ~l:2) ~n:4 ~entry_bits:2
    ~signed:false ~seed:31 ()

let test_trace_strassen_4_signed () =
  check_trace ~algo:strassen ~schedule:(Level_schedule.direct ~l:2) ~n:4 ~entry_bits:2
    ~signed:true ~seed:32 ()

let test_trace_winograd_4 () =
  check_trace ~algo:Instances.winograd ~schedule:(Level_schedule.full ~l:2) ~n:4
    ~entry_bits:2 ~signed:true ~seed:33 ()

let test_trace_naive2_4 () =
  check_trace ~algo:(Instances.naive ~t_dim:2) ~schedule:(Level_schedule.full ~l:2)
    ~n:4 ~entry_bits:1 ~signed:false ~seed:34 ()

let test_trace_strassen_8_thm45 () =
  let profile = Sparsity.analyze strassen in
  check_trace ~algo:strassen
    ~schedule:(Level_schedule.theorem45 ~profile ~d:2 ~n:8)
    ~n:8 ~entry_bits:1 ~signed:false ~seed:35 ()

let test_trace_strassen_squared_16 () =
  check_trace ~algo:Instances.strassen_squared ~schedule:(Level_schedule.full ~l:1)
    ~n:4 ~entry_bits:1 ~signed:false ~seed:36 ()

let test_trace_depth_formula () =
  List.iter
    (fun (schedule, n) ->
      let built =
        Trace_circuit.build ~algo:strassen ~schedule ~entry_bits:1 ~tau:0 ~n ()
      in
      let st = Trace_circuit.stats built in
      S.check_int
        (Printf.sprintf "depth 2t+2 (t=%d)" (Level_schedule.steps schedule))
        (Gate_model.trace_depth schedule)
        st.Stats.depth)
    [
      (Level_schedule.full ~l:1, 2);
      (Level_schedule.full ~l:2, 4);
      (Level_schedule.direct ~l:2, 4);
      (Level_schedule.full ~l:3, 8);
    ]

let test_trace_depth_within_paper_bound () =
  let profile = Sparsity.analyze strassen in
  List.iter
    (fun d ->
      let schedule = Level_schedule.theorem45 ~profile ~d ~n:16 in
      let built =
        Trace_circuit.build ~mode:Builder.Count_only ~algo:strassen ~schedule
          ~entry_bits:1 ~tau:0 ~n:16 ()
      in
      let st = Trace_circuit.stats built in
      S.check_bool
        (Printf.sprintf "depth <= 2d+5 at d=%d" d)
        true
        (st.Stats.depth <= Gate_model.trace_depth_bound ~d))
    [ 1; 2; 3 ]

let test_trace_count_only_matches () =
  let schedule = Level_schedule.full ~l:2 in
  let m1 = Trace_circuit.build ~algo:strassen ~schedule ~entry_bits:2 ~tau:5 ~n:4 () in
  let m2 =
    Trace_circuit.build ~mode:Builder.Count_only ~algo:strassen ~schedule ~entry_bits:2
      ~tau:5 ~n:4 ()
  in
  let s1 = Trace_circuit.stats m1 and s2 = Trace_circuit.stats m2 in
  S.check_int "gates" s1.Stats.gates s2.Stats.gates;
  S.check_int "edges" s1.Stats.edges s2.Stats.edges;
  S.check_int "depth" s1.Stats.depth s2.Stats.depth;
  S.check_bool "no circuit in count mode" true (m2.Trace_circuit.circuit = None)

let test_trace_value_output () =
  (* build_with_value emits canonical sign/magnitude outputs for the
     trace itself. *)
  let rng = Prng.create ~seed:39 in
  List.iter
    (fun signed ->
      let lo = if signed then -3 else 0 in
      let m = Matrix.random rng ~rows:4 ~cols:4 ~lo ~hi:3 in
      let expect = Trace_circuit.reference m in
      let built, norm =
        Trace_circuit.build_with_value ~algo:strassen
          ~schedule:(Level_schedule.full ~l:2) ~signed_inputs:signed ~entry_bits:2
          ~tau:expect ~n:4 ()
      in
      match built.Trace_circuit.circuit with
      | None -> Alcotest.fail "expected circuit"
      | Some c ->
          let input = Trace_circuit.encode_input built m in
          let r = Tcmm_threshold.Simulator.run ~check:true c input in
          let read = Tcmm_threshold.Simulator.value r in
          S.check_bool
            (Printf.sprintf "sign (trace=%d)" expect)
            (expect < 0)
            (read norm.Tcmm_arith.Binary.sign_negative);
          S.check_int "magnitude" (abs expect)
            (Repr.eval_bits read norm.Tcmm_arith.Binary.magnitude);
          S.check_bool "threshold output still present" true r.Tcmm_threshold.Simulator.outputs.(0))
    [ false; true ]

let test_trace_staged_matches_reference () =
  (* The Theorem 4.1 variant must compute the same function. *)
  let rng = Prng.create ~seed:37 in
  List.iter
    (fun stages ->
      let m = Matrix.random rng ~rows:4 ~cols:4 ~lo:0 ~hi:3 in
      let expect = Trace_circuit.reference m in
      let built =
        Trace_circuit.build_staged ~algo:strassen ~stages ~entry_bits:2 ~tau:expect ~n:4 ()
      in
      S.check_int
        (Printf.sprintf "stages=%d" stages)
        expect (Trace_circuit.trace_value built m);
      S.check_bool "boundary fires" true (Trace_circuit.run built m);
      let st = Trace_circuit.stats built in
      S.check_bool "depth <= 2*stages+2" true (st.Stats.depth <= (2 * stages) + 2))
    [ 1; 2; 3 ]

let test_staged_leaves_match_reference () =
  let rng = Prng.create ~seed:38 in
  let m = Matrix.random rng ~rows:4 ~cols:4 ~lo:(-2) ~hi:2 in
  let b = Builder.create () in
  let layout = Encode.alloc b ~n:4 ~entry_bits:2 ~signed:true in
  let leaves =
    Sum_tree.compute_leaves_staged b ~algo:strassen ~coeffs:(Sum_tree.a_coeffs strassen)
      ~stages:2 ~l:2 (Encode.grid layout)
  in
  let c = Builder.finalize b in
  let input = Array.make (Encode.total_wires layout) false in
  Encode.write layout m input;
  let r = Tcmm_threshold.Simulator.run ~check:true c input in
  let reference =
    Sum_tree.reference_leaves ~algo:strassen ~coeffs:(Sum_tree.a_coeffs strassen) m
  in
  Array.iteri
    (fun k sb ->
      S.check_int
        (Printf.sprintf "leaf %d" k)
        reference.(k)
        (Repr.eval_sbits (Tcmm_threshold.Simulator.value r) sb))
    leaves

let test_trace_tau_extremes () =
  let schedule = Level_schedule.full ~l:1 in
  let m = Matrix.of_rows [| [| 1; 1 |]; [| 1; 1 |] |] in
  let low = Trace_circuit.build ~algo:strassen ~schedule ~entry_bits:1 ~tau:(-1000) ~n:2 () in
  S.check_bool "tau very low" true (Trace_circuit.run low m);
  let high = Trace_circuit.build ~algo:strassen ~schedule ~entry_bits:1 ~tau:1000 ~n:2 () in
  S.check_bool "tau very high" false (Trace_circuit.run high m)

(* ------------------------------------------------------------------ *)
(* Matmul_circuit                                                     *)
(* ------------------------------------------------------------------ *)

let check_matmul ~algo ~schedule ~n ~entry_bits ~signed ~seed () =
  let rng = Prng.create ~seed in
  let lo = if signed then -((1 lsl entry_bits) - 1) else 0 in
  let hi = (1 lsl entry_bits) - 1 in
  let a = Matrix.random rng ~rows:n ~cols:n ~lo ~hi in
  let b = Matrix.random rng ~rows:n ~cols:n ~lo ~hi in
  let built =
    Matmul_circuit.build ~algo ~schedule ~signed_inputs:signed ~entry_bits ~n ()
  in
  let c = Matmul_circuit.run built ~a ~b in
  S.check_bool "C = A*B" true (Matrix.equal c (Matrix.mul a b))

let test_matmul_strassen_2 () =
  check_matmul ~algo:strassen ~schedule:(Level_schedule.full ~l:1) ~n:2 ~entry_bits:3
    ~signed:true ~seed:41 ()

let test_matmul_strassen_4_full () =
  check_matmul ~algo:strassen ~schedule:(Level_schedule.full ~l:2) ~n:4 ~entry_bits:2
    ~signed:true ~seed:42 ()

let test_matmul_strassen_4_direct () =
  check_matmul ~algo:strassen ~schedule:(Level_schedule.direct ~l:2) ~n:4 ~entry_bits:2
    ~signed:false ~seed:43 ()

let test_matmul_winograd_4 () =
  check_matmul ~algo:Instances.winograd ~schedule:(Level_schedule.full ~l:2) ~n:4
    ~entry_bits:2 ~signed:true ~seed:44 ()

let test_matmul_naive2_4 () =
  check_matmul ~algo:(Instances.naive ~t_dim:2) ~schedule:(Level_schedule.full ~l:2)
    ~n:4 ~entry_bits:2 ~signed:false ~seed:45 ()

let test_matmul_naive3_9 () =
  check_matmul ~algo:(Instances.naive ~t_dim:3) ~schedule:(Level_schedule.full ~l:2)
    ~n:9 ~entry_bits:1 ~signed:false ~seed:46 ()

let test_matmul_strassen_8_uniform () =
  check_matmul ~algo:strassen ~schedule:(Level_schedule.uniform ~steps:2 ~l:3) ~n:8
    ~entry_bits:1 ~signed:false ~seed:47 ()

let test_matmul_strassen_squared_4 () =
  check_matmul ~algo:Instances.strassen_squared ~schedule:(Level_schedule.full ~l:1)
    ~n:4 ~entry_bits:2 ~signed:true ~seed:48 ()

let test_matmul_depth_formula () =
  List.iter
    (fun (schedule, n) ->
      let built = Matmul_circuit.build ~algo:strassen ~schedule ~entry_bits:1 ~n () in
      let st = Matmul_circuit.stats built in
      S.check_int
        (Printf.sprintf "depth 4t+1 (t=%d)" (Level_schedule.steps schedule))
        (Gate_model.matmul_depth schedule)
        st.Stats.depth)
    [ (Level_schedule.full ~l:1, 2); (Level_schedule.full ~l:2, 4);
      (Level_schedule.direct ~l:2, 4) ]

let test_matmul_depth_within_paper_bound () =
  let profile = Sparsity.analyze strassen in
  List.iter
    (fun d ->
      let schedule = Level_schedule.theorem45 ~profile ~d ~n:16 in
      let built =
        Matmul_circuit.build ~mode:Builder.Count_only ~algo:strassen ~schedule
          ~entry_bits:1 ~n:16 ()
      in
      S.check_bool
        (Printf.sprintf "depth <= 4d+1 at d=%d" d)
        true
        ((Matmul_circuit.stats built).Stats.depth <= Gate_model.matmul_depth_bound ~d))
    [ 1; 2; 3 ]

let test_matmul_zero_matrices () =
  let built =
    Matmul_circuit.build ~algo:strassen ~schedule:(Level_schedule.full ~l:1)
      ~entry_bits:2 ~n:2 ()
  in
  let z = Matrix.create ~rows:2 ~cols:2 in
  S.check_bool "0*0 = 0" true (Matrix.equal (Matmul_circuit.run built ~a:z ~b:z) z)

let test_matmul_identity () =
  let built =
    Matmul_circuit.build ~algo:strassen ~schedule:(Level_schedule.full ~l:2)
      ~entry_bits:2 ~n:4 ()
  in
  let rng = Prng.create ~seed:49 in
  let a = Matrix.random rng ~rows:4 ~cols:4 ~lo:0 ~hi:3 in
  S.check_bool "A*I = A" true
    (Matrix.equal (Matmul_circuit.run built ~a ~b:(Matrix.identity 4)) a)

(* ------------------------------------------------------------------ *)
(* Tiled_matmul                                                       *)
(* ------------------------------------------------------------------ *)

let test_tiled_round_up () =
  S.check_int "exact" 8 (Tiled_matmul.round_up 8 ~block:4);
  S.check_int "up" 12 (Tiled_matmul.round_up 9 ~block:4);
  S.check_int "one" 4 (Tiled_matmul.round_up 1 ~block:4)

let check_tiled ~rows ~inner ~cols ~schedule ~entry_bits ~signed ~seed () =
  let rng = Prng.create ~seed in
  let lo = if signed then -((1 lsl entry_bits) - 1) else 0 in
  let hi = (1 lsl entry_bits) - 1 in
  let a = Matrix.random rng ~rows ~cols:inner ~lo ~hi in
  let b = Matrix.random rng ~rows:inner ~cols ~lo ~hi in
  let built =
    Tiled_matmul.build ~algo:strassen ~schedule ~signed_inputs:signed ~entry_bits ~rows
      ~inner ~cols ()
  in
  S.check_bool "C = A*B" true
    (Matrix.equal (Tiled_matmul.run built ~a ~b) (Matrix.mul a b))

let test_tiled_square () =
  check_tiled ~rows:8 ~inner:8 ~cols:8 ~schedule:(Level_schedule.full ~l:2)
    ~entry_bits:2 ~signed:true ~seed:81 ()

let test_tiled_rectangular () =
  check_tiled ~rows:4 ~inner:8 ~cols:12 ~schedule:(Level_schedule.full ~l:2)
    ~entry_bits:2 ~signed:true ~seed:82 ()

let test_tiled_tall_thin () =
  check_tiled ~rows:12 ~inner:2 ~cols:2 ~schedule:(Level_schedule.full ~l:1)
    ~entry_bits:3 ~signed:false ~seed:83 ()

let test_tiled_single_block () =
  (* Degenerate case: one tile — no summation layer. *)
  check_tiled ~rows:4 ~inner:4 ~cols:4 ~schedule:(Level_schedule.full ~l:2)
    ~entry_bits:2 ~signed:true ~seed:84 ()

let test_tiled_bounds_fan_in () =
  (* The whole point: block 4 tiles at N=16 keep fan-in far below the
     monolithic circuit's. *)
  let mono =
    Matmul_circuit.build ~mode:Builder.Count_only ~algo:strassen
      ~schedule:(Level_schedule.direct ~l:4) ~entry_bits:1 ~n:16 ()
  in
  let tiled =
    Tiled_matmul.build ~mode:Builder.Count_only ~algo:strassen
      ~schedule:(Level_schedule.full ~l:2) ~entry_bits:1 ~rows:16 ~inner:16 ~cols:16 ()
  in
  let fm = (Matmul_circuit.stats mono).Stats.max_fan_in in
  let ft = (Tiled_matmul.stats tiled).Stats.max_fan_in in
  S.check_bool (Printf.sprintf "fan-in %d < %d" ft fm) true (ft < fm / 4)

let test_tiled_rejects_unaligned () =
  try
    ignore
      (Tiled_matmul.build ~algo:strassen ~schedule:(Level_schedule.full ~l:2)
         ~entry_bits:1 ~rows:6 ~inner:4 ~cols:4 ());
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Naive_circuits                                                     *)
(* ------------------------------------------------------------------ *)

let test_naive_triangle_known_graphs () =
  let check_graph name g tau expect =
    let n = Tcmm_graph.Graph.num_vertices g in
    let built = Naive_circuits.triangle_threshold ~n ~tau () in
    S.check_bool name expect
      (Naive_circuits.triangle_run built (Tcmm_graph.Graph.adjacency g))
  in
  let k4 = Tcmm_graph.Generate.complete 4 in
  check_graph "K4 has >= 4 triangles" k4 4 true;
  check_graph "K4 lacks 5" k4 5 false;
  let empty = Tcmm_graph.Graph.empty 4 in
  check_graph "empty has >= 0" empty 0 true;
  check_graph "empty lacks 1" empty 1 false;
  let path = Tcmm_graph.Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  check_graph "path lacks 1" path 1 false

let test_naive_triangle_matches_reference () =
  let rng = Prng.create ~seed:51 in
  for _ = 1 to 5 do
    let g = Tcmm_graph.Generate.erdos_renyi rng ~n:8 ~p:0.5 in
    let count = Tcmm_graph.Triangles.count g in
    let adj = Tcmm_graph.Graph.adjacency g in
    let hit = Naive_circuits.triangle_threshold ~n:8 ~tau:count () in
    let miss = Naive_circuits.triangle_threshold ~n:8 ~tau:(count + 1) () in
    S.check_bool "tau = count fires" true (Naive_circuits.triangle_run hit adj);
    S.check_bool "tau = count+1 does not" false (Naive_circuits.triangle_run miss adj)
  done

let test_naive_triangle_size_and_depth () =
  (* The paper's (N choose 3) + 1 gates at depth 2. *)
  let built = Naive_circuits.triangle_threshold ~mode:Builder.Count_only ~n:8 ~tau:1 () in
  let st = Builder.stats built.Naive_circuits.builder in
  S.check_int "gates" ((8 * 7 * 6 / 6) + 1) st.Stats.gates;
  S.check_int "depth" 2 st.Stats.depth;
  S.check_int "inputs" (8 * 7 / 2) st.Stats.inputs

let test_naive_triangle_rejects_bad_matrix () =
  let built = Naive_circuits.triangle_threshold ~n:4 ~tau:1 () in
  (try
     ignore (Naive_circuits.triangle_encode built (Matrix.identity 4));
     Alcotest.fail "expected invalid_arg (diagonal)"
   with Invalid_argument _ -> ());
  let asym = Matrix.create ~rows:4 ~cols:4 in
  Matrix.set asym 0 1 1;
  try
    ignore (Naive_circuits.triangle_encode built asym);
    Alcotest.fail "expected invalid_arg (asymmetric)"
  with Invalid_argument _ -> ()

let test_naive_trace_matches_reference () =
  let rng = Prng.create ~seed:52 in
  let m = Matrix.random rng ~rows:3 ~cols:3 ~lo:(-3) ~hi:3 in
  let expect = Trace_circuit.reference m in
  let built =
    Naive_circuits.trace_threshold ~signed_inputs:true ~entry_bits:2 ~tau:expect ~n:3 ()
  in
  S.check_int "value" expect (Naive_circuits.trace_value built m);
  S.check_bool "fires at boundary" true (Naive_circuits.trace_run built m);
  let st = Builder.stats built.Naive_circuits.builder in
  S.check_int "depth 2" 2 st.Stats.depth

let test_naive_matmul_matches () =
  let rng = Prng.create ~seed:53 in
  let a = Matrix.random rng ~rows:3 ~cols:3 ~lo:(-3) ~hi:3 in
  let b = Matrix.random rng ~rows:3 ~cols:3 ~lo:(-3) ~hi:3 in
  let built = Naive_circuits.matmul ~signed_inputs:true ~entry_bits:2 ~n:3 () in
  S.check_bool "C = A*B" true
    (Matrix.equal (Naive_circuits.matmul_run built ~a ~b) (Matrix.mul a b));
  let st = Builder.stats built.Naive_circuits.builder in
  S.check_int "depth 3" 3 st.Stats.depth

(* ------------------------------------------------------------------ *)
(* Gate_model                                                         *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Gate_count (analytic-exact DP)                                     *)
(* ------------------------------------------------------------------ *)

let check_gate_count_trace ~algo ~schedule ~n ~entry_bits ~signed () =
  let built =
    Trace_circuit.build ~mode:Builder.Count_only ~algo ~schedule
      ~signed_inputs:signed ~entry_bits ~tau:1 ~n ()
  in
  let s = Trace_circuit.stats built in
  let dp = Gate_count.trace ~algo ~schedule ~entry_bits ~signed_inputs:signed ~n () in
  S.check_int "gates" s.Stats.gates dp.Gate_count.gates;
  S.check_int "edges" s.Stats.edges dp.Gate_count.edges

let test_gate_count_trace_strassen_schedules () =
  List.iter
    (fun schedule ->
      check_gate_count_trace ~algo:strassen ~schedule ~n:8 ~entry_bits:1 ~signed:false ())
    [
      Level_schedule.full ~l:3;
      Level_schedule.direct ~l:3;
      Level_schedule.uniform ~steps:2 ~l:3;
      Level_schedule.theorem45 ~profile:(Sparsity.analyze strassen) ~d:2 ~n:8;
    ]

let test_gate_count_trace_variants () =
  check_gate_count_trace ~algo:strassen ~schedule:(Level_schedule.full ~l:2) ~n:4
    ~entry_bits:3 ~signed:true ();
  check_gate_count_trace ~algo:Instances.winograd ~schedule:(Level_schedule.direct ~l:2)
    ~n:4 ~entry_bits:2 ~signed:false ();
  check_gate_count_trace ~algo:(Instances.naive ~t_dim:2)
    ~schedule:(Level_schedule.full ~l:2) ~n:4 ~entry_bits:2 ~signed:false ();
  check_gate_count_trace ~algo:(Instances.naive ~t_dim:3)
    ~schedule:(Level_schedule.full ~l:1) ~n:3 ~entry_bits:1 ~signed:false ();
  check_gate_count_trace ~algo:Instances.strassen_squared
    ~schedule:(Level_schedule.full ~l:1) ~n:4 ~entry_bits:2 ~signed:true ()

let test_gate_count_sum_tree_matches () =
  let schedule = Level_schedule.uniform ~steps:2 ~l:3 in
  let b = Builder.create ~mode:Builder.Count_only () in
  let layout = Encode.alloc b ~n:8 ~entry_bits:2 ~signed:false in
  let before = Builder.stats b in
  ignore
    (Sum_tree.compute_leaves b ~algo:strassen ~coeffs:(Sum_tree.a_coeffs strassen)
       ~schedule (Encode.grid layout));
  let after = Builder.stats b in
  let dp =
    Gate_count.sum_tree ~algo:strassen ~coeffs:(Sum_tree.a_coeffs strassen) ~schedule
      ~entry_bits:2 ~n:8 ()
  in
  S.check_int "gates" (after.Stats.gates - before.Stats.gates) dp.Gate_count.gates;
  S.check_int "edges" (after.Stats.edges - before.Stats.edges) dp.Gate_count.edges

let test_gate_count_share_top_matches () =
  let schedule = Level_schedule.uniform ~steps:2 ~l:3 in
  let built =
    Trace_circuit.build ~mode:Builder.Count_only ~share_top:true ~algo:strassen
      ~schedule ~entry_bits:2 ~tau:1 ~n:8 ()
  in
  let s = Trace_circuit.stats built in
  let dp = Gate_count.trace ~algo:strassen ~schedule ~entry_bits:2 ~share_top:true ~n:8 () in
  S.check_int "gates" s.Stats.gates dp.Gate_count.gates;
  S.check_int "edges" s.Stats.edges dp.Gate_count.edges;
  let base = Gate_count.trace ~algo:strassen ~schedule ~entry_bits:2 ~n:8 () in
  S.check_bool "saves gates" true (dp.Gate_count.gates < base.Gate_count.gates)

let test_share_top_circuits_correct () =
  let rng = Prng.create ~seed:77 in
  let a = Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3 in
  let b = Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3 in
  let built =
    Matmul_circuit.build ~share_top:true ~algo:strassen
      ~schedule:(Level_schedule.full ~l:2) ~signed_inputs:true ~entry_bits:2 ~n:4 ()
  in
  S.check_bool "matmul share_top" true
    (Matrix.equal (Matmul_circuit.run built ~a ~b) (Matrix.mul a b));
  let m = Matrix.random rng ~rows:4 ~cols:4 ~lo:0 ~hi:3 in
  let expect = Trace_circuit.reference m in
  let trace =
    Trace_circuit.build ~share_top:true ~algo:strassen
      ~schedule:(Level_schedule.direct ~l:2) ~entry_bits:2 ~tau:expect ~n:4 ()
  in
  S.check_int "trace share_top" expect (Trace_circuit.trace_value trace m)

let check_gate_count_matmul ~algo ~schedule ~n ~entry_bits ~signed ~share_top () =
  let built =
    Matmul_circuit.build ~mode:Builder.Count_only ~algo ~schedule
      ~signed_inputs:signed ~share_top ~entry_bits ~n ()
  in
  let s = Matmul_circuit.stats built in
  let dp =
    Gate_count_matmul.matmul ~algo ~schedule ~entry_bits ~signed_inputs:signed
      ~share_top ~n ()
  in
  S.check_int "gates" s.Stats.gates dp.Gate_count.gates;
  S.check_int "edges" s.Stats.edges dp.Gate_count.edges

let test_gate_count_matmul_schedules () =
  List.iter
    (fun schedule ->
      check_gate_count_matmul ~algo:strassen ~schedule ~n:8 ~entry_bits:1 ~signed:false
        ~share_top:false ())
    [
      Level_schedule.full ~l:3;
      Level_schedule.direct ~l:3;
      Level_schedule.uniform ~steps:2 ~l:3;
    ]

let test_gate_count_matmul_variants () =
  check_gate_count_matmul ~algo:strassen ~schedule:(Level_schedule.full ~l:2) ~n:4
    ~entry_bits:3 ~signed:true ~share_top:false ();
  check_gate_count_matmul ~algo:strassen ~schedule:(Level_schedule.uniform ~steps:2 ~l:3)
    ~n:8 ~entry_bits:2 ~signed:false ~share_top:true ();
  check_gate_count_matmul ~algo:Instances.winograd ~schedule:(Level_schedule.full ~l:2)
    ~n:4 ~entry_bits:2 ~signed:true ~share_top:false ();
  check_gate_count_matmul ~algo:(Instances.naive ~t_dim:2)
    ~schedule:(Level_schedule.full ~l:2) ~n:4 ~entry_bits:1 ~signed:false
    ~share_top:false ();
  check_gate_count_matmul ~algo:(Instances.naive ~t_dim:3)
    ~schedule:(Level_schedule.full ~l:1) ~n:3 ~entry_bits:2 ~signed:false
    ~share_top:false ();
  check_gate_count_matmul ~algo:Instances.strassen_squared
    ~schedule:(Level_schedule.full ~l:1) ~n:4 ~entry_bits:1 ~signed:true
    ~share_top:false ()

let test_gate_count_matmul_rejects () =
  (try
     ignore
       (Gate_count_matmul.matmul ~algo:strassen ~schedule:(Level_schedule.full ~l:2)
          ~entry_bits:1 ~n:8 ());
     Alcotest.fail "expected invalid_arg (size)"
   with Invalid_argument _ -> ());
  let algo =
    Tcmm_fastmm.Bilinear.make ~name:"doubled" ~t_dim:2
      ~u:(Array.map (Array.map (fun c -> 2 * c)) strassen.Bilinear.u)
      ~v:strassen.Bilinear.v ~w:strassen.Bilinear.w
  in
  try
    ignore
      (Gate_count_matmul.matmul ~algo ~schedule:(Level_schedule.full ~l:1) ~entry_bits:1
         ~n:2 ());
    Alcotest.fail "expected invalid_arg (coeffs)"
  with Invalid_argument _ -> ()

let test_gate_count_rejects_non_unit_coeffs () =
  let algo =
    Tcmm_fastmm.Bilinear.make ~name:"doubled" ~t_dim:2
      ~u:(Array.map (Array.map (fun c -> 2 * c)) strassen.Bilinear.u)
      ~v:strassen.Bilinear.v ~w:strassen.Bilinear.w
  in
  try
    ignore
      (Gate_count.trace ~algo ~schedule:(Level_schedule.full ~l:1) ~entry_bits:1 ~n:2 ());
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_gate_count_rejects_mismatched_n () =
  try
    ignore
      (Gate_count.trace ~algo:strassen ~schedule:(Level_schedule.full ~l:2) ~entry_bits:1
         ~n:8 ());
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Closed-form naive counts                                            *)
(* ------------------------------------------------------------------ *)

let test_naive_counts_formulas () =
  List.iter
    (fun n ->
      let built = Naive_circuits.triangle_threshold ~mode:Builder.Count_only ~n ~tau:1 () in
      let s = Builder.stats built.Naive_circuits.builder in
      let g, e = Naive_circuits.triangle_counts ~n in
      S.check_int "triangle gates" s.Stats.gates g;
      S.check_int "triangle edges" s.Stats.edges e)
    [ 3; 5; 9 ];
  List.iter
    (fun (n, bits, signed) ->
      let built =
        Naive_circuits.trace_threshold ~mode:Builder.Count_only ~signed_inputs:signed
          ~entry_bits:bits ~tau:1 ~n ()
      in
      let s = Builder.stats built.Naive_circuits.builder in
      let g, e = Naive_circuits.trace_counts ~signed_inputs:signed ~entry_bits:bits ~n () in
      S.check_int "trace gates" s.Stats.gates g;
      S.check_int "trace edges" s.Stats.edges e)
    [ (3, 1, false); (4, 2, true); (5, 3, false) ];
  List.iter
    (fun (n, bits, signed) ->
      let built =
        Naive_circuits.matmul ~mode:Builder.Count_only ~signed_inputs:signed
          ~entry_bits:bits ~n ()
      in
      let s = Builder.stats built.Naive_circuits.builder in
      let g, e = Naive_circuits.matmul_counts ~signed_inputs:signed ~entry_bits:bits ~n () in
      S.check_int "matmul gates" s.Stats.gates g;
      S.check_int "matmul edges" s.Stats.edges e)
    [ (3, 1, false); (4, 2, true); (5, 2, false); (2, 4, true) ]

let test_exponent_limits () =
  let p = Sparsity.analyze strassen in
  let omega = p.Sparsity.omega in
  Alcotest.(check (float 1e-6)) "d=0 gives omega + c" (omega +. p.Sparsity.c_const)
    (Gate_model.exponent p ~d:0);
  S.check_bool "decreasing in d" true
    (Gate_model.exponent p ~d:1 > Gate_model.exponent p ~d:2);
  S.check_bool "approaches omega" true (Gate_model.exponent p ~d:40 -. omega < 1e-6);
  (* d >= 4 is subcubic for Strassen, matching the paper's "for d > 3". *)
  S.check_bool "d=4 subcubic" true (Gate_model.exponent p ~d:4 < 3.);
  S.check_bool "d=1 not subcubic" true (Gate_model.exponent p ~d:1 > 3.)

let test_depth_formulas () =
  S.check_int "trace bound" 9 (Gate_model.trace_depth_bound ~d:2);
  S.check_int "matmul bound" 9 (Gate_model.matmul_depth_bound ~d:2);
  S.check_int "trace actual" 6 (Gate_model.trace_depth (Level_schedule.full ~l:2));
  S.check_int "matmul actual" 9 (Gate_model.matmul_depth (Level_schedule.full ~l:2))

let test_sum_slots_hand_computed () =
  let p = Sparsity.analyze strassen in
  (* N=4, full schedule [0;1;2]:
     level 1: r^0 * 12^1 * (4/2)^2 = 48;
     level 2: 7^1 * 12^1 * (4/4)^2 = 84; total 132. *)
  S.check_int "full N=4" 132
    (Gate_model.sum_slots p ~schedule:(Level_schedule.full ~l:2) ~n:4 ~side:`A);
  (* direct: 12^2 * 1 = 144. *)
  S.check_int "direct N=4" 144
    (Gate_model.sum_slots p ~schedule:(Level_schedule.direct ~l:2) ~n:4 ~side:`A)

let test_leaf_products () =
  let p = Sparsity.analyze strassen in
  S.check_int "7^2" 49 (Gate_model.leaf_products p ~n:4);
  S.check_int "7^4" 2401 (Gate_model.leaf_products p ~n:16)

let test_fit_exponent_recovers_slope () =
  let points = List.map (fun n -> (float_of_int n, float_of_int (n * n * n))) [ 2; 4; 8; 16 ] in
  Alcotest.(check (float 1e-9)) "cubic" 3. (Gate_model.fit_exponent points);
  let noisy = List.map (fun n -> (float_of_int n, 5. *. (float_of_int n ** 2.5))) [ 2; 4; 8 ] in
  Alcotest.(check (float 1e-9)) "2.5 with constant" 2.5 (Gate_model.fit_exponent noisy);
  try
    ignore (Gate_model.fit_exponent [ (2., 4.) ]);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "tcmm_core"
    [
      ( "level_schedule",
        [
          Alcotest.test_case "of_levels validation" `Quick test_schedule_of_levels_validation;
          Alcotest.test_case "shapes" `Quick test_schedule_shapes;
          Alcotest.test_case "height" `Quick test_schedule_height;
          Alcotest.test_case "geometric" `Quick test_schedule_geometric;
          Alcotest.test_case "theorem 4.4" `Quick test_schedule_theorem44;
          Alcotest.test_case "theorem 4.5" `Quick test_schedule_theorem45;
          Alcotest.test_case "thm45 other profiles" `Quick
            test_schedule_theorem45_winograd_and_naive;
        ] );
      ( "encode",
        [
          Alcotest.test_case "unsigned roundtrip" `Quick test_encode_roundtrip_unsigned;
          Alcotest.test_case "signed roundtrip" `Quick test_encode_roundtrip_signed;
          Alcotest.test_case "transposed grid" `Quick test_encode_transposed_grid;
          Alcotest.test_case "rejections" `Quick test_encode_rejections;
        ] );
      ( "sum_tree",
        [
          Alcotest.test_case "strassen full" `Quick test_sum_tree_strassen_full;
          Alcotest.test_case "strassen direct" `Quick test_sum_tree_strassen_direct;
          Alcotest.test_case "strassen B side" `Quick test_sum_tree_strassen_b_side;
          Alcotest.test_case "W side transposed" `Quick test_sum_tree_w_side_transposed;
          Alcotest.test_case "uniform n=8" `Quick test_sum_tree_uniform_8;
          Alcotest.test_case "naive-3" `Quick test_sum_tree_naive3;
          Alcotest.test_case "winograd" `Quick test_sum_tree_winograd;
          Alcotest.test_case "depth" `Quick test_sum_tree_depth;
          Alcotest.test_case "bad input size" `Quick test_sum_tree_rejects_bad_input;
          Alcotest.test_case "bad coeffs" `Quick test_sum_tree_rejects_bad_coeffs;
          Alcotest.test_case "figure 1 leaf sums" `Quick test_reference_leaves_strassen_2x2;
        ] );
      ( "combine_tree",
        [
          Alcotest.test_case "reference recovers product" `Quick
            test_reference_combine_recovers_product;
          Alcotest.test_case "wrong leaf count" `Quick test_combine_rejects_wrong_leaf_count;
        ] );
      ( "trace_circuit",
        [
          Alcotest.test_case "exhaustive 2x2 binary" `Quick test_trace_exhaustive_2x2_binary;
          Alcotest.test_case "strassen 4" `Quick test_trace_strassen_4;
          Alcotest.test_case "strassen 4 signed" `Quick test_trace_strassen_4_signed;
          Alcotest.test_case "winograd 4" `Quick test_trace_winograd_4;
          Alcotest.test_case "naive2 4" `Quick test_trace_naive2_4;
          Alcotest.test_case "strassen 8 thm45" `Quick test_trace_strassen_8_thm45;
          Alcotest.test_case "strassen^2" `Quick test_trace_strassen_squared_16;
          Alcotest.test_case "depth 2t+2" `Quick test_trace_depth_formula;
          Alcotest.test_case "depth <= 2d+5" `Quick test_trace_depth_within_paper_bound;
          Alcotest.test_case "count-only matches" `Quick test_trace_count_only_matches;
          Alcotest.test_case "tau extremes" `Quick test_trace_tau_extremes;
          Alcotest.test_case "value output" `Quick test_trace_value_output;
          Alcotest.test_case "staged variant" `Quick test_trace_staged_matches_reference;
          Alcotest.test_case "staged leaves" `Quick test_staged_leaves_match_reference;
        ] );
      ( "matmul_circuit",
        [
          Alcotest.test_case "strassen 2" `Quick test_matmul_strassen_2;
          Alcotest.test_case "strassen 4 full" `Quick test_matmul_strassen_4_full;
          Alcotest.test_case "strassen 4 direct" `Quick test_matmul_strassen_4_direct;
          Alcotest.test_case "winograd 4" `Quick test_matmul_winograd_4;
          Alcotest.test_case "naive2 4" `Quick test_matmul_naive2_4;
          Alcotest.test_case "naive3 9" `Quick test_matmul_naive3_9;
          Alcotest.test_case "strassen 8 uniform" `Quick test_matmul_strassen_8_uniform;
          Alcotest.test_case "strassen^2 4" `Quick test_matmul_strassen_squared_4;
          Alcotest.test_case "depth 4t+1" `Quick test_matmul_depth_formula;
          Alcotest.test_case "depth <= 4d+1" `Quick test_matmul_depth_within_paper_bound;
          Alcotest.test_case "zero matrices" `Quick test_matmul_zero_matrices;
          Alcotest.test_case "identity" `Quick test_matmul_identity;
        ] );
      ( "tiled_matmul",
        [
          Alcotest.test_case "round_up" `Quick test_tiled_round_up;
          Alcotest.test_case "square" `Quick test_tiled_square;
          Alcotest.test_case "rectangular" `Quick test_tiled_rectangular;
          Alcotest.test_case "tall-thin" `Quick test_tiled_tall_thin;
          Alcotest.test_case "single block" `Quick test_tiled_single_block;
          Alcotest.test_case "bounds fan-in" `Quick test_tiled_bounds_fan_in;
          Alcotest.test_case "rejects unaligned" `Quick test_tiled_rejects_unaligned;
        ] );
      ( "naive_circuits",
        [
          Alcotest.test_case "triangle known graphs" `Quick test_naive_triangle_known_graphs;
          Alcotest.test_case "triangle vs reference" `Quick
            test_naive_triangle_matches_reference;
          Alcotest.test_case "triangle size/depth" `Quick test_naive_triangle_size_and_depth;
          Alcotest.test_case "triangle bad matrix" `Quick test_naive_triangle_rejects_bad_matrix;
          Alcotest.test_case "trace vs reference" `Quick test_naive_trace_matches_reference;
          Alcotest.test_case "matmul vs reference" `Quick test_naive_matmul_matches;
        ] );
      ( "gate_count",
        [
          Alcotest.test_case "trace schedules" `Quick test_gate_count_trace_strassen_schedules;
          Alcotest.test_case "trace variants" `Quick test_gate_count_trace_variants;
          Alcotest.test_case "sum tree" `Quick test_gate_count_sum_tree_matches;
          Alcotest.test_case "share_top matches" `Quick test_gate_count_share_top_matches;
          Alcotest.test_case "matmul schedules" `Quick test_gate_count_matmul_schedules;
          Alcotest.test_case "matmul variants" `Quick test_gate_count_matmul_variants;
          Alcotest.test_case "matmul rejects" `Quick test_gate_count_matmul_rejects;
          Alcotest.test_case "share_top circuits correct" `Quick
            test_share_top_circuits_correct;
          Alcotest.test_case "rejects non-unit coeffs" `Quick
            test_gate_count_rejects_non_unit_coeffs;
          Alcotest.test_case "rejects mismatched n" `Quick test_gate_count_rejects_mismatched_n;
          Alcotest.test_case "naive closed forms" `Quick test_naive_counts_formulas;
        ] );
      ( "gate_model",
        [
          Alcotest.test_case "exponent limits" `Quick test_exponent_limits;
          Alcotest.test_case "depth formulas" `Quick test_depth_formulas;
          Alcotest.test_case "sum slots" `Quick test_sum_slots_hand_computed;
          Alcotest.test_case "leaf products" `Quick test_leaf_products;
          Alcotest.test_case "fit exponent" `Quick test_fit_exponent_recovers_slope;
        ] );
    ]
