open Tcmm_threshold
open Tcmm_arith
module S = Tcmm_test_support.Support
module Ilog = Tcmm_util.Ilog

(* ------------------------------------------------------------------ *)
(* Repr                                                               *)
(* ------------------------------------------------------------------ *)

let test_repr_of_terms () =
  let u = Repr.unsigned_of_terms [ (0, 3); (1, 0); (2, 5) ] in
  S.check_int "zero weights dropped" 2 (Repr.num_terms u);
  S.check_int "bound" 8 u.Repr.bound;
  S.check_int "max weight" 5 (Repr.max_weight u);
  try
    ignore (Repr.unsigned_of_terms [ (0, -1) ]);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_repr_of_bits () =
  let u = Repr.unsigned_of_bits [| 0; 1; 2 |] in
  S.check_int "bound" 7 u.Repr.bound;
  S.check_bool "is binary" true (Repr.is_binary u);
  S.check_bool "non-binary" false (Repr.is_binary (Repr.unsigned_of_terms [ (0, 3) ]))

let test_repr_scale_concat () =
  let u = Repr.unsigned_of_terms [ (0, 1); (1, 2) ] in
  let v = Repr.scale_unsigned 3 u in
  S.check_int "scaled bound" 9 v.Repr.bound;
  let w = Repr.concat_unsigned [ u; v ] in
  S.check_int "concat bound" 12 w.Repr.bound;
  S.check_int "concat terms" 4 (Repr.num_terms w)

let test_repr_signed_ops () =
  let s =
    {
      Repr.pos = Repr.unsigned_of_terms [ (0, 2) ];
      neg = Repr.unsigned_of_terms [ (1, 3) ];
    }
  in
  let read w = w = 0 || w = 1 in
  S.check_int "eval signed" (-1) (Repr.eval_signed read s);
  S.check_int "negate" 1 (Repr.eval_signed read (Repr.negate s));
  S.check_int "scale -2" 2 (Repr.eval_signed read (Repr.scale_signed (-2) s));
  S.check_int "scale 0" 0 (Repr.eval_signed read (Repr.scale_signed 0 s));
  S.check_int "concat" (-2)
    (Repr.eval_signed read (Repr.concat_signed [ s; s ]))

let test_repr_eval_bits () =
  let read w = w = 0 || w = 2 in
  S.check_int "101b" 5 (Repr.eval_bits read [| 0; 1; 2 |]);
  (* pos = 1 + 2 = 3; neg = 0 + 2 = 2 (bit 1 reads wire 0, which is set). *)
  S.check_int "sbits" 1
    (Repr.eval_sbits read { Repr.pos_bits = [| 0; 2 |]; neg_bits = [| 1; 0 |] });
  S.check_int "zero" 0 (Repr.eval_sbits read Repr.sbits_zero)

(* ------------------------------------------------------------------ *)
(* Msb (Lemma 3.1)                                                    *)
(* ------------------------------------------------------------------ *)

let test_msb_binary_exhaustive () =
  (* s is a 4-bit binary number; every bit position must be recovered. *)
  let l = 4 in
  for k = 1 to l do
    S.all_inputs l
    |> List.iter (fun input ->
           let wire, read =
             S.run_on ~num_inputs:l
               (fun b ins ->
                 let terms = Array.to_list (Array.mapi (fun i w -> (w, 1 lsl i)) ins) in
                 Msb.kth_msb b ~terms ~l ~k)
               input
           in
           let s = S.int_of_bools input in
           let expect = (s lsr (l - k)) land 1 = 1 in
           S.check_bool (Printf.sprintf "s=%d k=%d" s k) expect (read wire))
  done

let test_msb_weighted_exhaustive () =
  (* Arbitrary positive weights: s = 3a + 5b + 2c + 7d in [0, 17] ⊂ [0, 2^5). *)
  let weights = [ 3; 5; 2; 7 ] in
  let l = 5 in
  for k = 1 to l do
    S.all_inputs 4
    |> List.iter (fun input ->
           let wire, read =
             S.run_on ~num_inputs:4
               (fun b ins ->
                 let terms = List.mapi (fun i w -> (ins.(i), w)) weights in
                 Msb.kth_msb b ~terms ~l ~k)
               input
           in
           let s =
             List.fold_left ( + ) 0
               (List.mapi (fun i w -> if input.(i) then w else 0) weights)
           in
           let expect = (s lsr (l - k)) land 1 = 1 in
           S.check_bool (Printf.sprintf "s=%d k=%d" s k) expect (read wire))
  done

let test_msb_gate_cost () =
  (* The construction must use exactly 2^k + 1 gates and depth 2. *)
  List.iter
    (fun k ->
      let b = Builder.create ~mode:Builder.Count_only () in
      let ins = Builder.add_inputs b 3 in
      let terms = Array.to_list (Array.map (fun w -> (w, 1)) ins) in
      let out = Msb.kth_msb b ~terms ~l:5 ~k in
      S.check_int (Printf.sprintf "gates k=%d" k) (Msb.gate_cost ~k) (Builder.num_gates b);
      S.check_int "depth 2" 2 (Builder.depth_of b out))
    [ 1; 2; 3; 4 ]

let test_msb_invalid_args () =
  let b = Builder.create () in
  let x = Builder.add_input b in
  let attempt l k =
    try
      ignore (Msb.kth_msb b ~terms:[ (x, 1) ] ~l ~k);
      Alcotest.fail "expected invalid_arg"
    with Invalid_argument _ -> ()
  in
  attempt 4 0;
  attempt 4 5;
  attempt 70 1

(* ------------------------------------------------------------------ *)
(* Weighted_sum (Lemma 3.2)                                           *)
(* ------------------------------------------------------------------ *)

let check_to_bits_exhaustive name terms_of_wires n =
  S.all_inputs n
  |> List.iter (fun input ->
         let (bits, expected_rep), read =
           S.run_on ~num_inputs:n
             (fun b ins ->
               let u = Repr.unsigned_of_terms (terms_of_wires ins) in
               (Weighted_sum.to_bits b u, u))
             input
         in
         let expect = Repr.eval_unsigned (fun w -> input.(w)) expected_rep in
         S.check_int
           (Printf.sprintf "%s input=%d" name (S.int_of_bools input))
           expect
           (Repr.eval_bits read bits))

let test_to_bits_uniform_weights () =
  check_to_bits_exhaustive "count ones" (fun ins -> Array.to_list (Array.map (fun w -> (w, 1)) ins)) 6

let test_to_bits_mixed_weights () =
  check_to_bits_exhaustive "mixed"
    (fun ins ->
      List.mapi (fun i w -> (w, List.nth [ 3; 1; 4; 1; 5; 9; 2 ] i)) (Array.to_list ins))
    7

let test_to_bits_power_weights () =
  check_to_bits_exhaustive "powers with gaps"
    (fun ins -> List.mapi (fun i w -> (w, 1 lsl (2 * i))) (Array.to_list ins))
    5

let test_to_bits_even_weights () =
  (* All weights even: the LSB is statically zero (const gate path). *)
  check_to_bits_exhaustive "even" (fun ins -> Array.to_list (Array.map (fun w -> (w, 6)) ins)) 4

let test_to_bits_duplicate_wires () =
  (* The same wire appearing twice must be merged, not double-counted. *)
  S.all_inputs 2
  |> List.iter (fun input ->
         let bits, read =
           S.run_on ~num_inputs:2
             (fun b ins ->
               let u =
                 Repr.concat_unsigned
                   [
                     Repr.unsigned_of_terms [ (ins.(0), 1); (ins.(1), 2) ];
                     Repr.unsigned_of_terms [ (ins.(0), 3) ];
                   ]
               in
               Weighted_sum.to_bits b u)
             input
         in
         let expect = (if input.(0) then 4 else 0) + if input.(1) then 2 else 0 in
         S.check_int "merged" expect (Repr.eval_bits read bits))

let test_to_bits_binary_passthrough () =
  let b = Builder.create () in
  let ins = Builder.add_inputs b 4 in
  let bits = Weighted_sum.to_bits b (Repr.unsigned_of_bits ins) in
  S.check_int "no gates emitted" 0 (Builder.num_gates b);
  Alcotest.(check (array int)) "same wires" ins bits

let test_to_bits_empty () =
  let b = Builder.create () in
  let bits = Weighted_sum.to_bits b Repr.unsigned_empty in
  S.check_int "no bits" 0 (Array.length bits);
  S.check_int "no gates" 0 (Builder.num_gates b)

let test_to_bits_depth_2 () =
  let b = Builder.create () in
  let ins = Builder.add_inputs b 5 in
  let u = Repr.unsigned_of_terms (Array.to_list (Array.map (fun w -> (w, 3)) ins)) in
  let bits = Weighted_sum.to_bits b u in
  Array.iter (fun w -> S.check_bool "depth <= 2" true (Builder.depth_of b w <= 2)) bits

let test_to_bits_width () =
  let b = Builder.create () in
  let ins = Builder.add_inputs b 3 in
  let u = Repr.unsigned_of_terms (Array.to_list (Array.map (fun w -> (w, 5)) ins)) in
  let bits = Weighted_sum.to_bits b u in
  S.check_int "width = bits(bound)" (Ilog.bits 15) (Array.length bits)

let prop_to_bits_random =
  S.qcheck_case ~count:100 "to_bits equals direct sum on random weights"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 8) (int_range 1 40))
        (int_range 0 1000000))
    (fun (weights, seed) ->
      let n = List.length weights in
      let rng = Tcmm_util.Prng.create ~seed in
      let input = Array.init n (fun _ -> Tcmm_util.Prng.bool rng) in
      let bits, read =
        S.run_on ~num_inputs:n
          (fun b ins ->
            let u = Repr.unsigned_of_terms (List.mapi (fun i w -> (ins.(i), w)) weights) in
            Weighted_sum.to_bits b u)
          input
      in
      let expect =
        List.fold_left ( + ) 0 (List.mapi (fun i w -> if input.(i) then w else 0) weights)
      in
      Repr.eval_bits read bits = expect)

let test_unsigned_sum_scales () =
  S.all_inputs 4
  |> List.iter (fun input ->
         let bits, read =
           S.run_on ~num_inputs:4
             (fun b ins ->
               let u1 = Repr.unsigned_of_terms [ (ins.(0), 1); (ins.(1), 2) ] in
               let u2 = Repr.unsigned_of_terms [ (ins.(2), 1); (ins.(3), 1) ] in
               Weighted_sum.unsigned_sum b [ (3, u1); (2, u2); (0, u1) ])
             input
         in
         let v b' = if b' then 1 else 0 in
         let expect =
           (3 * ((1 * v input.(0)) + (2 * v input.(1))))
           + (2 * (v input.(2) + v input.(3)))
         in
         S.check_int "scaled sum" expect (Repr.eval_bits read bits))

let test_signed_sum_exhaustive () =
  (* s = 2*x - 3*y + z, where x, y, z are 2-bit numbers. *)
  S.all_inputs 6
  |> List.iter (fun input ->
         let sb, read =
           S.run_on ~num_inputs:6
             (fun b ins ->
               let num i = Repr.sbits_of_bits [| ins.(2 * i); ins.((2 * i) + 1) |] in
               Weighted_sum.signed_sum b
                 [
                   (2, Repr.signed_of_sbits (num 0));
                   (-3, Repr.signed_of_sbits (num 1));
                   (1, Repr.signed_of_sbits (num 2));
                 ])
             input
         in
         let v i = (if input.(2 * i) then 1 else 0) + if input.((2 * i) + 1) then 2 else 0 in
         let expect = (2 * v 0) - (3 * v 1) + v 2 in
         S.check_int "signed sum" expect (Repr.eval_sbits read sb))

let test_signed_sum_negative_parts () =
  (* Inputs that themselves have negative parts. *)
  S.all_inputs 4
  |> List.iter (fun input ->
         let sb, read =
           S.run_on ~num_inputs:4
             (fun b ins ->
               let x = { Repr.pos_bits = [| ins.(0) |]; neg_bits = [| ins.(1) |] } in
               let y = { Repr.pos_bits = [| ins.(2) |]; neg_bits = [| ins.(3) |] } in
               Weighted_sum.signed_sum b
                 [ (5, Repr.signed_of_sbits x); (-2, Repr.signed_of_sbits y) ])
             input
         in
         let v a b' = (if input.(a) then 1 else 0) - if input.(b') then 1 else 0 in
         let expect = (5 * v 0 1) - (2 * v 2 3) in
         S.check_int "signed parts" expect (Repr.eval_sbits read sb))

let test_signed_sum_empty () =
  let b = Builder.create () in
  let sb = Weighted_sum.signed_sum b [] in
  S.check_int "no gates" 0 (Builder.num_gates b);
  S.check_int "zero" 0 (Repr.eval_sbits (fun _ -> true) sb)

(* Compare to_bits_cost against an actual count-only build on the same
   weight multiset. *)
let check_cost_matches name multiset =
  let b = Builder.create ~mode:Builder.Count_only () in
  let total_wires = List.fold_left (fun acc (_, m) -> acc + m) 0 multiset in
  let ins = Builder.add_inputs b (max total_wires 1) in
  let terms =
    List.concat_map
      (fun (w, m) -> List.init m (fun _ -> w))
      multiset
    |> List.mapi (fun i w -> (ins.(i), w))
  in
  let u = Repr.unsigned_of_terms terms in
  ignore (Weighted_sum.to_bits b u);
  let s = Builder.stats b in
  let gates, edges = Weighted_sum.to_bits_cost multiset in
  S.check_int (name ^ " gates") s.Tcmm_threshold.Stats.gates gates;
  S.check_int (name ^ " edges") s.Tcmm_threshold.Stats.edges edges

let test_to_bits_cost_cases () =
  check_cost_matches "uniform" [ (1, 9) ];
  check_cost_matches "binary" [ (1, 1); (2, 1); (4, 1) ];
  check_cost_matches "binary with mults" [ (1, 3); (2, 3); (4, 3) ];
  check_cost_matches "mixed" [ (3, 2); (5, 1); (8, 4) ];
  check_cost_matches "even only" [ (6, 4) ];
  check_cost_matches "gappy powers" [ (1, 2); (16, 5) ];
  check_cost_matches "single" [ (13, 1) ];
  check_cost_matches "empty" []

let prop_to_bits_cost_random =
  S.qcheck_case ~count:200 "to_bits_cost matches build on random multisets"
    QCheck2.Gen.(list_size (int_range 1 6) (pair (int_range 1 64) (int_range 1 5)))
    (fun multiset ->
      (* Merge duplicate weights first: the cost function expects a merged
         multiset (distinct wires per weight entry). *)
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (w, m) ->
          Hashtbl.replace tbl w ((try Hashtbl.find tbl w with Not_found -> 0) + m))
        multiset;
      (* Ascending weight order keeps the builder's is_binary view aligned
         with the multiset view (our circuit constructors also produce
         ascending orders whenever a representation is binary). *)
      let merged =
        List.sort compare (Hashtbl.fold (fun w m acc -> (w, m) :: acc) tbl [])
      in
      let b = Builder.create ~mode:Builder.Count_only () in
      let total = List.fold_left (fun acc (_, m) -> acc + m) 0 merged in
      let ins = Builder.add_inputs b total in
      let terms =
        List.concat_map (fun (w, m) -> List.init m (fun _ -> w)) merged
        |> List.mapi (fun i w -> (ins.(i), w))
      in
      ignore (Weighted_sum.to_bits b (Repr.unsigned_of_terms terms));
      let s = Builder.stats b in
      let gates, edges = Weighted_sum.to_bits_cost merged in
      s.Tcmm_threshold.Stats.gates = gates && s.Tcmm_threshold.Stats.edges = edges)

let test_share_top_same_function () =
  (* share_top must not change the computed bits, only the gate layout. *)
  let weights = [ 3; 1; 4; 1; 5 ] in
  S.all_inputs 5
  |> List.iter (fun input ->
         let (bits_base, bits_shared), read =
           S.run_on ~num_inputs:5
             (fun b ins ->
               let u () =
                 Repr.unsigned_of_terms (List.mapi (fun i w -> (ins.(i), w)) weights)
               in
               ( Weighted_sum.to_bits b (u ()),
                 Weighted_sum.to_bits ~share_top:true b (u ()) ))
             input
         in
         S.check_int "same value"
           (Repr.eval_bits read bits_base)
           (Repr.eval_bits read bits_shared))

let test_share_top_saves_gates () =
  let multiset = [ (1, 10); (2, 10); (4, 10) ] in
  let g0, e0 = Weighted_sum.to_bits_cost multiset in
  let g1, e1 = Weighted_sum.to_bits_cost ~share_top:true multiset in
  S.check_bool "fewer gates" true (g1 < g0);
  S.check_bool "fewer edges" true (e1 < e0)

let test_share_top_cost_matches_build () =
  List.iter
    (fun multiset ->
      let b = Builder.create ~mode:Builder.Count_only () in
      let total = List.fold_left (fun acc (_, m) -> acc + m) 0 multiset in
      let ins = Builder.add_inputs b total in
      let terms =
        List.concat_map (fun (w, m) -> List.init m (fun _ -> w)) multiset
        |> List.mapi (fun i w -> (ins.(i), w))
      in
      ignore (Weighted_sum.to_bits ~share_top:true b (Repr.unsigned_of_terms terms));
      let s = Builder.stats b in
      let gates, edges = Weighted_sum.to_bits_cost ~share_top:true multiset in
      S.check_int "gates" s.Tcmm_threshold.Stats.gates gates;
      S.check_int "edges" s.Tcmm_threshold.Stats.edges edges)
    [
      [ (1, 9) ];
      [ (1, 3); (2, 3); (4, 3) ];
      [ (3, 2); (5, 1); (8, 4) ];
      [ (6, 4) ];
      [ (1, 2); (16, 5) ];
    ]

let test_gate_cost_binary_formula () =
  (* Spot-check the closed form is monotone and positive. *)
  let c1 = Weighted_sum.gate_cost_binary ~n:4 ~w:1 ~b:1 in
  let c2 = Weighted_sum.gate_cost_binary ~n:8 ~w:1 ~b:1 in
  let c3 = Weighted_sum.gate_cost_binary ~n:8 ~w:1 ~b:4 in
  S.check_bool "positive" true (c1 > 0);
  S.check_bool "monotone in n" true (c2 > c1);
  S.check_bool "monotone in b" true (c3 > c2)

(* ------------------------------------------------------------------ *)
(* Product (Lemma 3.3)                                                *)
(* ------------------------------------------------------------------ *)

let test_product2_exhaustive () =
  (* x: 3 bits, y: 2 bits — all values. *)
  S.all_inputs 5
  |> List.iter (fun input ->
         let rep, read =
           S.run_on ~num_inputs:5
             (fun b ins ->
               Product.product2 b [| ins.(0); ins.(1); ins.(2) |] [| ins.(3); ins.(4) |])
             input
         in
         let x = S.int_of_bools (Array.sub input 0 3) in
         let y = S.int_of_bools (Array.sub input 3 2) in
         S.check_int
           (Printf.sprintf "%d*%d" x y)
           (x * y)
           (Repr.eval_unsigned read rep))

let test_product3_exhaustive () =
  S.all_inputs 6
  |> List.iter (fun input ->
         let rep, read =
           S.run_on ~num_inputs:6
             (fun b ins ->
               Product.product3 b [| ins.(0); ins.(1) |] [| ins.(2); ins.(3) |]
                 [| ins.(4); ins.(5) |])
             input
         in
         let x = S.int_of_bools (Array.sub input 0 2) in
         let y = S.int_of_bools (Array.sub input 2 2) in
         let z = S.int_of_bools (Array.sub input 4 2) in
         S.check_int
           (Printf.sprintf "%d*%d*%d" x y z)
           (x * y * z)
           (Repr.eval_unsigned read rep))

let test_product_gate_counts_and_depth () =
  let b = Builder.create () in
  let ins = Builder.add_inputs b 9 in
  let x = Array.sub ins 0 3 and y = Array.sub ins 3 3 and z = Array.sub ins 6 3 in
  let r2 = Product.product2 b x y in
  S.check_int "m^2 gates" 9 (Builder.num_gates b);
  let before = Builder.num_gates b in
  let r3 = Product.product3 b x y z in
  S.check_int "m^3 gates" 27 (Builder.num_gates b - before);
  Array.iter (fun w -> S.check_int "depth 1" 1 (Builder.depth_of b w)) r2.Repr.wires;
  Array.iter (fun w -> S.check_int "depth 1" 1 (Builder.depth_of b w)) r3.Repr.wires

let test_signed_product2_all_signs () =
  (* x = xp - xn with xp, xn one bit each; same for y: covers -1, 0, 1. *)
  S.all_inputs 4
  |> List.iter (fun input ->
         let rep, read =
           S.run_on ~num_inputs:4
             (fun b ins ->
               let x = { Repr.pos_bits = [| ins.(0) |]; neg_bits = [| ins.(1) |] } in
               let y = { Repr.pos_bits = [| ins.(2) |]; neg_bits = [| ins.(3) |] } in
               Product.signed_product2 b x y)
             input
         in
         let v a b' = (if input.(a) then 1 else 0) - if input.(b') then 1 else 0 in
         S.check_int "signed product" (v 0 1 * v 2 3) (Repr.eval_signed read rep))

let test_signed_product3_all_signs () =
  S.all_inputs 6
  |> List.iter (fun input ->
         let rep, read =
           S.run_on ~num_inputs:6
             (fun b ins ->
               let n i = { Repr.pos_bits = [| ins.(2 * i) |]; neg_bits = [| ins.(2 * i + 1) |] } in
               Product.signed_product3 b (n 0) (n 1) (n 2))
             input
         in
         let v i = (if input.(2 * i) then 1 else 0) - if input.(2 * i + 1) then 1 else 0 in
         S.check_int "signed triple product" (v 0 * v 1 * v 2) (Repr.eval_signed read rep))

let prop_signed_product2_random =
  S.qcheck_case ~count:100 "signed product2 on multi-bit operands"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let rng = Tcmm_util.Prng.create ~seed in
      let input = Array.init 12 (fun _ -> Tcmm_util.Prng.bool rng) in
      let rep, read =
        S.run_on ~num_inputs:12
          (fun b ins ->
            let x =
              { Repr.pos_bits = Array.sub ins 0 3; neg_bits = Array.sub ins 3 3 }
            in
            let y =
              { Repr.pos_bits = Array.sub ins 6 3; neg_bits = Array.sub ins 9 3 }
            in
            Product.signed_product2 b x y)
          input
      in
      let part off = S.int_of_bools (Array.sub input off 3) in
      let x = part 0 - part 3 and y = part 6 - part 9 in
      Repr.eval_signed read rep = x * y)

(* ------------------------------------------------------------------ *)
(* Binary (canonical arithmetic)                                      *)
(* ------------------------------------------------------------------ *)

let test_binary_add_exhaustive () =
  (* 3-bit + 2-bit, all values. *)
  S.all_inputs 5
  |> List.iter (fun input ->
         let bits, read =
           S.run_on ~num_inputs:5
             (fun b ins -> Binary.add b (Array.sub ins 0 3) (Array.sub ins 3 2))
             input
         in
         let x = S.int_of_bools (Array.sub input 0 3) in
         let y = S.int_of_bools (Array.sub input 3 2) in
         S.check_int (Printf.sprintf "%d+%d" x y) (x + y) (Repr.eval_bits read bits))

let test_binary_add_empty_and_single () =
  let b = Builder.create () in
  let x = Builder.add_input b in
  S.check_int "empty" 0 (Array.length (Binary.add b [||] [||]));
  let s = Binary.add b [| x |] [||] in
  let c = Builder.finalize b in
  let r = Tcmm_threshold.Simulator.run c [| true |] in
  S.check_int "x + 0 = x" 1 (Repr.eval_bits (Tcmm_threshold.Simulator.value r) s)

let test_binary_sub_exhaustive () =
  (* 3-bit - 3-bit over all pairs with x >= y. *)
  S.all_inputs 6
  |> List.iter (fun input ->
         let x = S.int_of_bools (Array.sub input 0 3) in
         let y = S.int_of_bools (Array.sub input 3 3) in
         if x >= y then begin
           let bits, read =
             S.run_on ~num_inputs:6
               (fun b ins -> Binary.sub b (Array.sub ins 0 3) (Array.sub ins 3 3))
               input
           in
           S.check_int (Printf.sprintf "%d-%d" x y) (x - y) (Repr.eval_bits read bits)
         end)

let test_binary_sub_mixed_width () =
  S.all_inputs 4
  |> List.iter (fun input ->
         let x = S.int_of_bools (Array.sub input 0 3) in
         let y = S.int_of_bools (Array.sub input 3 1) in
         if x >= y then begin
           let bits, read =
             S.run_on ~num_inputs:4
               (fun b ins -> Binary.sub b (Array.sub ins 0 3) (Array.sub ins 3 1))
               input
           in
           S.check_int (Printf.sprintf "%d-%d" x y) (x - y) (Repr.eval_bits read bits)
         end)

let test_binary_geq () =
  S.all_inputs 4
  |> List.iter (fun input ->
         let wire, read =
           S.run_on ~num_inputs:4
             (fun b ins -> Binary.geq b (Array.sub ins 0 2) (Array.sub ins 2 2))
             input
         in
         let x = S.int_of_bools (Array.sub input 0 2) in
         let y = S.int_of_bools (Array.sub input 2 2) in
         S.check_bool (Printf.sprintf "%d>=%d" x y) (x >= y) (read wire))

let test_binary_mux () =
  S.all_inputs 5
  |> List.iter (fun input ->
         let bits, read =
           S.run_on ~num_inputs:5
             (fun b ins ->
               Binary.mux b ~sel:ins.(0) ~if_true:(Array.sub ins 1 2)
                 ~if_false:(Array.sub ins 3 2))
             input
         in
         let t = S.int_of_bools (Array.sub input 1 2) in
         let f = S.int_of_bools (Array.sub input 3 2) in
         S.check_int "mux" (if input.(0) then t else f) (Repr.eval_bits read bits))

let test_binary_normalize_exhaustive () =
  (* value = 3a + b - 2c - 3d: ranges over [-5, 4]. *)
  S.all_inputs 4
  |> List.iter (fun input ->
         let norm, read =
           S.run_on ~num_inputs:4
             (fun b ins ->
               let s =
                 {
                   Repr.pos = Repr.unsigned_of_terms [ (ins.(0), 3); (ins.(1), 1) ];
                   neg = Repr.unsigned_of_terms [ (ins.(2), 2); (ins.(3), 3) ];
                 }
               in
               Binary.normalize b s)
             input
         in
         let v i = if input.(i) then 1 else 0 in
         let value = (3 * v 0) + v 1 - (2 * v 2) - (3 * v 3) in
         S.check_bool
           (Printf.sprintf "sign of %d" value)
           (value < 0)
           (read norm.Binary.sign_negative);
         S.check_int
           (Printf.sprintf "|%d|" value)
           (abs value)
           (Repr.eval_bits read norm.Binary.magnitude))

let test_binary_normalize_matmul_outputs () =
  (* End-to-end: canonicalize a matmul circuit's outputs. *)
  let rng = Tcmm_util.Prng.create ~seed:91 in
  let b = Builder.create () in
  let layout = Tcmm.Encode.alloc b ~n:2 ~entry_bits:2 ~signed:true in
  let grid = Tcmm.Encode.grid layout in
  (* A 2x2 dot product: c = a00*b... keep it simple: one entry each. *)
  let prod = Product.signed_product2 b grid.(0).(0) grid.(0).(1) in
  let norm = Binary.normalize b prod in
  let c = Builder.finalize b in
  for _ = 1 to 20 do
    let m =
      Tcmm_fastmm.Matrix.random rng ~rows:2 ~cols:2 ~lo:(-3) ~hi:3
    in
    let input = Array.make (Tcmm.Encode.total_wires layout) false in
    Tcmm.Encode.write layout m input;
    let r = Tcmm_threshold.Simulator.run ~check:true c input in
    let read = Tcmm_threshold.Simulator.value r in
    let expect = Tcmm_fastmm.Matrix.get m 0 0 * Tcmm_fastmm.Matrix.get m 0 1 in
    S.check_bool "sign" (expect < 0) (read norm.Binary.sign_negative);
    S.check_int "magnitude" (abs expect) (Repr.eval_bits read norm.Binary.magnitude)
  done

let test_binary_add_depth () =
  let b = Builder.create () in
  let ins = Builder.add_inputs b 8 in
  let s = Binary.add b (Array.sub ins 0 4) (Array.sub ins 4 4) in
  Array.iter (fun w -> S.check_bool "depth <= 3" true (Builder.depth_of b w <= 3)) s

(* ------------------------------------------------------------------ *)
(* Symmetric                                                          *)
(* ------------------------------------------------------------------ *)

let popcount_of input = Array.fold_left (fun n v -> if v then n + 1 else n) 0 input

let check_symmetric_exhaustive name n build expect =
  S.all_inputs n
  |> List.iter (fun input ->
         let wire, read = S.run_on ~num_inputs:n build input in
         S.check_bool
           (Printf.sprintf "%s input=%d" name (S.int_of_bools input))
           (expect input) (read wire))

let test_symmetric_parity () =
  check_symmetric_exhaustive "parity" 6
    (fun b ins -> Symmetric.parity b ins)
    (fun input -> popcount_of input land 1 = 1)

let test_symmetric_majority () =
  check_symmetric_exhaustive "majority even" 4
    (fun b ins -> Symmetric.majority b ins)
    (fun input -> popcount_of input >= 3);
  check_symmetric_exhaustive "majority odd" 5
    (fun b ins -> Symmetric.majority b ins)
    (fun input -> popcount_of input >= 3)

let test_symmetric_exactly_interval () =
  check_symmetric_exhaustive "exactly 2" 5
    (fun b ins -> Symmetric.exactly b ~k:2 ins)
    (fun input -> popcount_of input = 2);
  check_symmetric_exhaustive "exactly 0" 4
    (fun b ins -> Symmetric.exactly b ~k:0 ins)
    (fun input -> popcount_of input = 0);
  check_symmetric_exhaustive "in [2,3]" 5
    (fun b ins -> Symmetric.in_interval b ~lo:2 ~hi:3 ins)
    (fun input ->
      let p = popcount_of input in
      p >= 2 && p <= 3)

let test_symmetric_arbitrary () =
  (* f(k) = k is 0, 3 or 4 — several change points including at the top. *)
  check_symmetric_exhaustive "custom" 5
    (fun b ins -> Symmetric.symmetric b ~f:(fun k -> k = 0 || k = 3 || k = 4) ins)
    (fun input ->
      let p = popcount_of input in
      p = 0 || p = 3 || p = 4)

let test_symmetric_constants () =
  check_symmetric_exhaustive "always true" 3
    (fun b ins -> Symmetric.symmetric b ~f:(fun _ -> true) ins)
    (fun _ -> true);
  check_symmetric_exhaustive "always false" 3
    (fun b ins -> Symmetric.symmetric b ~f:(fun _ -> false) ins)
    (fun _ -> false)

let test_symmetric_popcount () =
  S.all_inputs 5
  |> List.iter (fun input ->
         let bits, read =
           S.run_on ~num_inputs:5 (fun b ins -> Symmetric.popcount b ins) input
         in
         S.check_int "popcount" (popcount_of input) (Repr.eval_bits read bits))

let test_symmetric_depth_and_cost () =
  let b = Builder.create ~mode:Builder.Count_only () in
  let ins = Builder.add_inputs b 9 in
  let p = Symmetric.parity b ins in
  S.check_int "parity depth 2" 2 (Builder.depth_of b p);
  (* n change points + output. *)
  S.check_int "parity gates" 10 (Builder.num_gates b);
  let b2 = Builder.create ~mode:Builder.Count_only () in
  let ins2 = Builder.add_inputs b2 9 in
  let m = Symmetric.majority b2 ins2 in
  S.check_int "majority: one gate" 1 (Builder.num_gates b2);
  S.check_int "majority depth 1" 1 (Builder.depth_of b2 m)

(* ------------------------------------------------------------------ *)
(* Compare                                                            *)
(* ------------------------------------------------------------------ *)

let test_compare_ge_exhaustive () =
  (* value = 2a + b - 3c, thresholds from -3 to 3. *)
  List.iter
    (fun tau ->
      S.all_inputs 3
      |> List.iter (fun input ->
             let wire, read =
               S.run_on ~num_inputs:3
                 (fun b ins ->
                   let s =
                     {
                       Repr.pos = Repr.unsigned_of_terms [ (ins.(0), 2); (ins.(1), 1) ];
                       neg = Repr.unsigned_of_terms [ (ins.(2), 3) ];
                     }
                   in
                   Compare.ge b s tau)
                 input
             in
             let v i = if input.(i) then 1 else 0 in
             let value = (2 * v 0) + v 1 - (3 * v 2) in
             S.check_bool
               (Printf.sprintf "%d >= %d" value tau)
               (value >= tau) (read wire)))
    [ -3; -2; -1; 0; 1; 2; 3 ]

let test_compare_merges_cancelling_terms () =
  let b = Builder.create () in
  let x = Builder.add_input b in
  let y = Builder.add_input b in
  let s =
    {
      Repr.pos = Repr.unsigned_of_terms [ (x, 2); (y, 1) ];
      neg = Repr.unsigned_of_terms [ (x, 2) ];
    }
  in
  let terms = Compare.terms_of_signed s in
  S.check_int "cancelled term dropped" 1 (List.length terms);
  Alcotest.(check (list (pair int int))) "remaining" [ (y, 1) ] terms

(* ------------------------------------------------------------------ *)
(* Staged_sum                                                         *)
(* ------------------------------------------------------------------ *)

let test_group_size () =
  S.check_int "n=16 stages=2" 4 (Staged_sum.group_size ~n:16 ~stages:2);
  S.check_int "n=17 stages=2" 5 (Staged_sum.group_size ~n:17 ~stages:2);
  S.check_int "n=8 stages=3" 2 (Staged_sum.group_size ~n:8 ~stages:3);
  S.check_int "n=1" 1 (Staged_sum.group_size ~n:1 ~stages:2)

let test_staged_sum_matches_flat () =
  (* Sum of 9 single-bit terms with mixed signs, at several stage counts. *)
  List.iter
    (fun stages ->
      S.all_inputs 9
      |> List.iter (fun input ->
             let sb, read =
               S.run_on ~num_inputs:9
                 (fun b ins ->
                   let terms =
                     Array.to_list
                       (Array.mapi
                          (fun i w ->
                            let c = if i mod 3 = 2 then -1 else i mod 3 + 1 in
                            (c, Repr.signed_of_sbits (Repr.sbits_of_bits [| w |])))
                          ins)
                   in
                   Staged_sum.signed_sum b ~stages terms)
                 input
             in
             let expect = ref 0 in
             Array.iteri
               (fun i v ->
                 if v then
                   expect := !expect + (if i mod 3 = 2 then -1 else (i mod 3) + 1))
               input;
             S.check_int
               (Printf.sprintf "stages=%d" stages)
               !expect (Repr.eval_sbits read sb)))
    [ 1; 2; 3 ]

let test_staged_sum_depth () =
  let b = Builder.create () in
  let ins = Builder.add_inputs b 16 in
  let terms =
    Array.to_list
      (Array.map (fun w -> (1, Repr.signed_of_sbits (Repr.sbits_of_bits [| w |]))) ins)
  in
  let sb = Staged_sum.signed_sum b ~stages:2 terms in
  Array.iter
    (fun w -> S.check_bool "depth <= 4" true (Builder.depth_of b w <= 4))
    sb.Repr.pos_bits

let test_staged_sum_invalid () =
  let b = Builder.create () in
  try
    ignore (Staged_sum.signed_sum b ~stages:0 []);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "tcmm_arith"
    [
      ( "repr",
        [
          Alcotest.test_case "of_terms" `Quick test_repr_of_terms;
          Alcotest.test_case "of_bits" `Quick test_repr_of_bits;
          Alcotest.test_case "scale/concat" `Quick test_repr_scale_concat;
          Alcotest.test_case "signed ops" `Quick test_repr_signed_ops;
          Alcotest.test_case "eval bits" `Quick test_repr_eval_bits;
        ] );
      ( "msb",
        [
          Alcotest.test_case "binary exhaustive" `Quick test_msb_binary_exhaustive;
          Alcotest.test_case "weighted exhaustive" `Quick test_msb_weighted_exhaustive;
          Alcotest.test_case "gate cost 2^k+1" `Quick test_msb_gate_cost;
          Alcotest.test_case "invalid args" `Quick test_msb_invalid_args;
        ] );
      ( "weighted_sum",
        [
          Alcotest.test_case "uniform weights" `Quick test_to_bits_uniform_weights;
          Alcotest.test_case "mixed weights" `Quick test_to_bits_mixed_weights;
          Alcotest.test_case "power weights" `Quick test_to_bits_power_weights;
          Alcotest.test_case "even weights" `Quick test_to_bits_even_weights;
          Alcotest.test_case "duplicate wires" `Quick test_to_bits_duplicate_wires;
          Alcotest.test_case "binary passthrough" `Quick test_to_bits_binary_passthrough;
          Alcotest.test_case "empty" `Quick test_to_bits_empty;
          Alcotest.test_case "depth 2" `Quick test_to_bits_depth_2;
          Alcotest.test_case "width" `Quick test_to_bits_width;
          prop_to_bits_random;
          Alcotest.test_case "unsigned_sum scales" `Quick test_unsigned_sum_scales;
          Alcotest.test_case "signed exhaustive" `Quick test_signed_sum_exhaustive;
          Alcotest.test_case "signed neg parts" `Quick test_signed_sum_negative_parts;
          Alcotest.test_case "signed empty" `Quick test_signed_sum_empty;
          Alcotest.test_case "cost formula" `Quick test_gate_cost_binary_formula;
          Alcotest.test_case "to_bits_cost cases" `Quick test_to_bits_cost_cases;
          prop_to_bits_cost_random;
          Alcotest.test_case "share_top same function" `Quick test_share_top_same_function;
          Alcotest.test_case "share_top saves gates" `Quick test_share_top_saves_gates;
          Alcotest.test_case "share_top cost matches" `Quick test_share_top_cost_matches_build;
        ] );
      ( "product",
        [
          Alcotest.test_case "product2" `Quick test_product2_exhaustive;
          Alcotest.test_case "product3" `Quick test_product3_exhaustive;
          Alcotest.test_case "counts and depth" `Quick test_product_gate_counts_and_depth;
          Alcotest.test_case "signed product2" `Quick test_signed_product2_all_signs;
          Alcotest.test_case "signed product3" `Quick test_signed_product3_all_signs;
          prop_signed_product2_random;
        ] );
      ( "binary",
        [
          Alcotest.test_case "add exhaustive" `Quick test_binary_add_exhaustive;
          Alcotest.test_case "add edge cases" `Quick test_binary_add_empty_and_single;
          Alcotest.test_case "sub exhaustive" `Quick test_binary_sub_exhaustive;
          Alcotest.test_case "sub mixed width" `Quick test_binary_sub_mixed_width;
          Alcotest.test_case "geq" `Quick test_binary_geq;
          Alcotest.test_case "mux" `Quick test_binary_mux;
          Alcotest.test_case "normalize exhaustive" `Quick test_binary_normalize_exhaustive;
          Alcotest.test_case "normalize product" `Quick test_binary_normalize_matmul_outputs;
          Alcotest.test_case "add depth" `Quick test_binary_add_depth;
        ] );
      ( "symmetric",
        [
          Alcotest.test_case "parity" `Quick test_symmetric_parity;
          Alcotest.test_case "majority" `Quick test_symmetric_majority;
          Alcotest.test_case "exactly/interval" `Quick test_symmetric_exactly_interval;
          Alcotest.test_case "arbitrary" `Quick test_symmetric_arbitrary;
          Alcotest.test_case "constants" `Quick test_symmetric_constants;
          Alcotest.test_case "popcount" `Quick test_symmetric_popcount;
          Alcotest.test_case "depth and cost" `Quick test_symmetric_depth_and_cost;
        ] );
      ( "compare",
        [
          Alcotest.test_case "ge exhaustive" `Quick test_compare_ge_exhaustive;
          Alcotest.test_case "merges cancellations" `Quick
            test_compare_merges_cancelling_terms;
        ] );
      ( "staged_sum",
        [
          Alcotest.test_case "group size" `Quick test_group_size;
          Alcotest.test_case "matches flat" `Quick test_staged_sum_matches_flat;
          Alcotest.test_case "depth bound" `Quick test_staged_sum_depth;
          Alcotest.test_case "invalid stages" `Quick test_staged_sum_invalid;
        ] );
    ]
