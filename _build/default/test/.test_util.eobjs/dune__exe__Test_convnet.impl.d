test/test_convnet.ml: Alcotest Array Builder Circuit Conv Im2col Image Inference List Printf Simulator Stats Tcmm Tcmm_arith Tcmm_convnet Tcmm_fastmm Tcmm_test_support Tcmm_threshold Tcmm_util
