test/test_fastmm.mli:
