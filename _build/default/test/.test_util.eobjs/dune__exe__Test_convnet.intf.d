test/test_convnet.mli:
