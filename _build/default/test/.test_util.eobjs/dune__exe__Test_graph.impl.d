test/test_graph.ml: Alcotest Array Generate Graph List QCheck2 Tcmm Tcmm_fastmm Tcmm_graph Tcmm_test_support Tcmm_util Triangles
