test/test_threshold.mli:
