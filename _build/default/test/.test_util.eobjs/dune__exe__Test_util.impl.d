test/test_util.ml: Alcotest Array Checked Ilog Intvec List Printf Prng QCheck2 String Tablefmt Tcmm_test_support Tcmm_util
