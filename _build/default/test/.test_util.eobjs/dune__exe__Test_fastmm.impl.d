test/test_fastmm.ml: Alcotest Array Bilinear Instances List Matrix Orbit Printf QCheck2 Sparsity Tcmm_fastmm Tcmm_test_support Tcmm_util Tensor Verify
