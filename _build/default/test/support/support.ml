(* Shared helpers for the alcotest suites. *)

open Tcmm_threshold

(* Build a circuit with [num_inputs] inputs using [f], simulate it on
   [input], and return [f]'s handle together with a wire reader. *)
let run_on ~num_inputs f input =
  let b = Builder.create () in
  let ins = Builder.add_inputs b num_inputs in
  let handle = f b ins in
  let c = Builder.finalize b in
  let r = Simulator.run ~check:true c input in
  (handle, fun w -> Simulator.value r w)

(* Enumerate all 2^n boolean vectors of length n (n <= 20). *)
let all_inputs n =
  if n > 20 then invalid_arg "Support.all_inputs: too many inputs";
  List.init (1 lsl n) (fun mask ->
      Array.init n (fun i -> (mask lsr i) land 1 = 1))

(* Interpret a boolean vector as the little-endian binary number it sets. *)
let int_of_bools bs =
  Array.to_list bs
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let bools_of_int ~width v = Array.init width (fun i -> (v lsr i) land 1 = 1)

(* Alcotest checkers. *)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qcheck_case ?(count = 200) name gen prop =
  QCheck2.Test.make ~count ~name gen prop |> fun t ->
  let t = QCheck_alcotest.to_alcotest t in
  t
