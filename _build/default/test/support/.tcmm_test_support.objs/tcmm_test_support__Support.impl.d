test/support/support.ml: Alcotest Array Builder List QCheck2 QCheck_alcotest Simulator Tcmm_threshold
