(* Command-line interface to the threshold-circuit matrix multiplication
   library.

   Subcommands:
     algorithms  - list bundled fast matmul algorithms with sparsity data
     stats       - exact circuit statistics for chosen parameters
     verify      - build circuits and check them against integer references
     triangles   - threshold-query triangles of a random graph
     serve       - run the circuit-serving daemon
     request     - query a running daemon
     infer       - served im2col convolution, checked against the direct conv
     compile     - batch-build circuits into a persistent artifact store
     artifacts   - list / inspect / verify / gc an artifact store *)

open Cmdliner
module F = Tcmm_fastmm
module T = Tcmm
module Tb = Tcmm_util.Tablefmt
module P = Tcmm_server.Protocol

let algo_by_name name =
  let all = F.Instances.all () in
  match List.find_opt (fun a -> a.F.Bilinear.name = name) all with
  | Some a -> Ok a
  | None ->
      Error
        (Printf.sprintf "unknown algorithm %S (try: %s)" name
           (String.concat ", " (List.map (fun a -> a.F.Bilinear.name) all)))

let algo_arg =
  let parse s = match algo_by_name s with Ok a -> Ok a | Error e -> Error (`Msg e) in
  let print ppf a = Format.fprintf ppf "%s" a.F.Bilinear.name in
  Arg.conv (parse, print)

let algo_term =
  Arg.(
    value
    & opt algo_arg F.Instances.strassen
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc:"Fast matmul algorithm to compile.")

let n_term =
  Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Matrix dimension (a power of the algorithm's T).")

let d_term =
  Arg.(
    value
    & opt int 2
    & info [ "d" ] ~docv:"D" ~doc:"Theorem 4.5 depth parameter (d >= 1).")

let bits_term =
  Arg.(value & opt int 1 & info [ "b"; "bits" ] ~docv:"BITS" ~doc:"Bits per entry.")

let schedule_term =
  Arg.(
    value
    & opt string "thm45"
    & info [ "s"; "schedule" ] ~docv:"SCHED"
        ~doc:"Level schedule: thm44, thm45, full, direct, or uniform-K.")

let seed_term =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let resolve_schedule ~algo ~name ~d ~n = T.Level_schedule.resolve ~algo ~name ~d ~n

let engine_term =
  Arg.(
    value
    & opt
        (enum
           [
             ("packed", Tcmm_threshold.Simulator.Packed);
             ("reference", Tcmm_threshold.Simulator.Reference);
           ])
        Tcmm_threshold.Simulator.Packed
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Evaluator: $(b,packed) (levelized, default) or $(b,reference).")

let domains_term =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"K"
        ~doc:"Evaluation domains for the packed engine (1 = sequential).")

let no_templates_term =
  Arg.(
    value & flag
    & info [ "no-templates" ]
        ~doc:
          "Disable template-stamped construction: build gate by gate through \
           the legacy builder and pack from the materialized circuit.")

let profile_build_term =
  Arg.(
    value & flag
    & info [ "profile-build" ]
        ~doc:"Print the construct / stamp / lower phase breakdown of each build.")

let no_kernels_term =
  Arg.(
    value & flag
    & info [ "no-kernels" ]
        ~doc:
          "Disable the template-specialized evaluation kernels: every segment \
           runs through the generic CSR loop (bit-identical results, only \
           slower).")

let kronpow_term =
  Arg.(
    value & flag
    & info [ "kronpow" ]
        ~doc:
          "Build the linear layers with the Kronecker-power sum-tree \
           factoring (value-identical circuits, fewer gates and edges at \
           large n, +2 depth per factored step).")

let profile_eval_term =
  Arg.(
    value & flag
    & info [ "profile-eval" ]
        ~doc:
          "Accumulate and print the per-level evaluation wall-time breakdown \
           of batched runs.")

(* ------------------------------------------------------------------ *)

let algorithms_cmd =
  let run () =
    let rows =
      List.filter_map
        (fun algo ->
          match F.Sparsity.analyze algo with
          | p ->
              Some
                [
                  Tb.Str algo.F.Bilinear.name;
                  Tb.Int algo.F.Bilinear.t_dim;
                  Tb.Int algo.F.Bilinear.rank;
                  Tb.Float p.F.Sparsity.omega;
                  Tb.Int p.F.Sparsity.a.F.Sparsity.total;
                  Tb.Int p.F.Sparsity.b.F.Sparsity.total;
                  Tb.Int p.F.Sparsity.c.F.Sparsity.total;
                  Tb.Float p.F.Sparsity.overall.F.Sparsity.alpha;
                  Tb.Float p.F.Sparsity.overall.F.Sparsity.beta;
                  Tb.Float p.F.Sparsity.overall.F.Sparsity.gamma;
                  Tb.Float p.F.Sparsity.c_const;
                ]
          | exception Invalid_argument _ -> None)
        (F.Instances.all ())
    in
    Tb.print ~title:"Bundled fast matrix multiplication algorithms (Definition 2.1)"
      ~header:[ "name"; "T"; "r"; "omega"; "s_A"; "s_B"; "s_C"; "alpha"; "beta"; "gamma"; "c" ]
      ~rows;
    0
  in
  Cmd.v (Cmd.info "algorithms" ~doc:"List bundled algorithms and their sparsity profiles.")
    Term.(const run $ const ())

let stats_cmd =
  let run algo n d bits sched =
    let schedule = resolve_schedule ~algo ~name:sched ~d ~n in
    Format.printf "schedule: %a@." T.Level_schedule.pp schedule;
    let trace =
      T.Trace_circuit.build ~mode:Tcmm_threshold.Builder.Count_only ~algo ~schedule
        ~entry_bits:bits ~tau:1 ~n ()
    in
    let matmul =
      T.Matmul_circuit.build ~mode:Tcmm_threshold.Builder.Count_only ~algo ~schedule
        ~entry_bits:bits ~n ()
    in
    let row name (s : Tcmm_threshold.Stats.t) =
      [
        Tb.Str name; Tb.Int s.gates; Tb.Int s.depth; Tb.Int s.edges;
        Tb.Int s.max_fan_in; Tb.Int s.max_abs_weight;
      ]
    in
    Tb.print
      ~title:(Printf.sprintf "Exact circuit statistics (N=%d, %s, %d-bit entries)" n
                algo.F.Bilinear.name bits)
      ~header:[ "circuit"; "gates"; "depth"; "edges"; "fan-in"; "|w|max" ]
      ~rows:[ row "trace(A^3) >= tau" (T.Trace_circuit.stats trace);
              row "C = A*B" (T.Matmul_circuit.stats matmul) ];
    0
  in
  Cmd.v (Cmd.info "stats" ~doc:"Exact gate/depth/edge counts for chosen parameters.")
    Term.(const run $ algo_term $ n_term $ d_term $ bits_term $ schedule_term)

let verify_cmd =
  let run algo n d bits sched seed engine domains no_templates profile
      no_kernels profile_eval =
    let templates = not no_templates in
    let kernels = not no_kernels in
    (* With templates on the build goes straight to the packed CSR form
       (Direct mode); without them it materializes gate by gate. *)
    let mode =
      if templates then Tcmm_threshold.Builder.Direct
      else Tcmm_threshold.Builder.Materialize
    in
    let profile_phases name builder ~construct ~lower =
      if profile then begin
        let ts = Tcmm_threshold.Builder.template_stats builder in
        Format.printf
          "%s phases: construct %.3fs, lower %.3fs (%d templates, %d instances, \
           %d stamped gates)@."
          name construct lower ts.Tcmm_threshold.Builder.templates
          ts.Tcmm_threshold.Builder.instances
          ts.Tcmm_threshold.Builder.stamped_gates
      end
    in
    let schedule = resolve_schedule ~algo ~name:sched ~d ~n in
    let rng = Tcmm_util.Prng.create ~seed in
    let hi = (1 lsl bits) - 1 in
    let a = F.Matrix.random rng ~rows:n ~cols:n ~lo:(-hi) ~hi in
    let b = F.Matrix.random rng ~rows:n ~cols:n ~lo:(-hi) ~hi in
    Format.printf "building C = A*B circuit (N=%d, %s, schedule %a)...@." n
      algo.F.Bilinear.name T.Level_schedule.pp schedule;
    let t0 = Unix.gettimeofday () in
    let built =
      T.Matmul_circuit.build ~mode ~templates ~algo ~schedule ~signed_inputs:true
        ~entry_bits:bits ~n ()
    in
    let t1 = Unix.gettimeofday () in
    let packed = T.Matmul_circuit.pack ~domains ~kernels built in
    let t2 = Unix.gettimeofday () in
    profile_phases "matmul" built.T.Matmul_circuit.builder ~construct:(t1 -. t0)
      ~lower:(t2 -. t1);
    Format.printf "circuit: %s@."
      (Tcmm_threshold.Stats.to_row (T.Matmul_circuit.stats built));
    let cov = Tcmm_threshold.Packed.coverage packed in
    let cov_total =
      cov.Tcmm_threshold.Packed.kernel_gates
      + cov.Tcmm_threshold.Packed.fallback_gates
    in
    Format.printf "kernels: %d/%d gates (%.1f%% coverage, %d/%d segments)@."
      cov.Tcmm_threshold.Packed.kernel_gates cov_total
      (if cov_total = 0 then 0.
       else
         100.
         *. float_of_int cov.Tcmm_threshold.Packed.kernel_gates
         /. float_of_int cov_total)
      cov.Tcmm_threshold.Packed.kernel_segments
      (cov.Tcmm_threshold.Packed.kernel_segments
      + cov.Tcmm_threshold.Packed.generic_segments);
    let c = T.Matmul_circuit.run ~engine ~domains built ~a ~b in
    let ok_mm = F.Matrix.equal c (F.Matrix.mul a b) in
    Format.printf "matmul circuit matches reference: %b@." ok_mm;
    if profile_eval then begin
      (* Batched traversals with a per-level profile: several batches of
         fresh draws through the same packed circuit, all through one
         reused workspace — the same amortization the serving daemon
         does, instead of allocating and zeroing a wire buffer per
         batch. *)
      let batches = 4 and lanes = 8 in
      let ws = Tcmm_threshold.Packed.workspace () in
      let prof = Tcmm_threshold.Packed.make_profile packed in
      for _ = 1 to batches do
        let inputs =
          Array.init lanes (fun _ ->
              let a = F.Matrix.random rng ~rows:n ~cols:n ~lo:(-hi) ~hi in
              let b = F.Matrix.random rng ~rows:n ~cols:n ~lo:(-hi) ~hi in
              T.Matmul_circuit.encode_inputs built ~a ~b)
        in
        let (_ : Tcmm_threshold.Packed.batch_result) =
          Tcmm_threshold.Packed.run_batch ~domains ~profile:prof ~ws packed
            inputs
        in
        ()
      done;
      let ns = prof.Tcmm_threshold.Packed.ep_level_ns in
      let total = Array.fold_left ( +. ) 0. ns in
      Format.printf "eval profile: %d batches of %d lanes in %.3f ms, hottest levels:@."
        batches lanes (total /. 1e6);
      let order = Array.init (Array.length ns) (fun i -> i) in
      Array.sort (fun x y -> compare ns.(y) ns.(x)) order;
      Array.iteri
        (fun rank l ->
          if rank < 5 && ns.(l) > 0. then
            Format.printf "  level %3d: %8.3f ms (%.1f%%)@." l (ns.(l) /. 1e6)
              (100. *. ns.(l) /. total))
        order
    end;
    let m = F.Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi in
    let expect = T.Trace_circuit.reference m in
    let t0 = Unix.gettimeofday () in
    let trace =
      T.Trace_circuit.build ~mode ~templates ~algo ~schedule ~entry_bits:bits
        ~tau:expect ~n ()
    in
    let t1 = Unix.gettimeofday () in
    let (_ : Tcmm_threshold.Packed.t) = T.Trace_circuit.pack ~domains ~kernels trace in
    let t2 = Unix.gettimeofday () in
    profile_phases "trace" trace.T.Trace_circuit.builder ~construct:(t1 -. t0)
      ~lower:(t2 -. t1);
    let ok_tr =
      T.Trace_circuit.trace_value ~engine ~domains trace m = expect
      && T.Trace_circuit.run ~engine ~domains trace m
    in
    Format.printf "trace circuit matches reference: %b@." ok_tr;
    if ok_mm && ok_tr then 0 else 1
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Build circuits and check them against integer references.")
    Term.(
      const run $ algo_term $ n_term $ d_term $ bits_term $ schedule_term $ seed_term
      $ engine_term $ domains_term $ no_templates_term $ profile_build_term
      $ no_kernels_term $ profile_eval_term)

let triangles_cmd =
  let run n d p tau seed engine domains graphs =
    let rng = Tcmm_util.Prng.create ~seed in
    let g = Tcmm_graph.Generate.erdos_renyi rng ~n ~p in
    let exact = Tcmm_graph.Triangles.count g in
    Format.printf "G(n=%d, p=%.2f): %d edges, %d triangles, clustering %.3f@." n p
      (Tcmm_graph.Graph.num_edges g) exact
      (Tcmm_graph.Triangles.clustering_coefficient g);
    let algo = F.Instances.strassen in
    let profile = F.Sparsity.analyze algo in
    let schedule = T.Level_schedule.theorem45 ~profile ~d ~n in
    let built = T.Trace_circuit.build ~algo ~schedule ~entry_bits:1 ~tau:(6 * tau) ~n () in
    let fires = T.Trace_circuit.run ~engine ~domains built (Tcmm_graph.Graph.adjacency g) in
    Format.printf "circuit (depth %d, %s): at least %d triangles? %b (truth: %b)@."
      (T.Gate_model.trace_depth schedule)
      (Tcmm_threshold.Stats.to_row (T.Trace_circuit.stats built))
      tau fires (exact >= tau);
    (* Further draws go through batched packed evaluation with one
       reused workspace across chunks — the serving daemon's
       amortization, instead of allocating and zeroing a fresh wire
       buffer per graph. *)
    let ok_rest =
      if graphs <= 1 then true
      else begin
        let packed = T.Trace_circuit.pack ~domains built in
        let ws = Tcmm_threshold.Packed.workspace () in
        let out = built.T.Trace_circuit.output in
        let remaining = ref (graphs - 1) and agree = ref 0 and total = ref 0 in
        while !remaining > 0 do
          let lanes = min 32 !remaining in
          let gs =
            Array.init lanes (fun _ -> Tcmm_graph.Generate.erdos_renyi rng ~n ~p)
          in
          let inputs =
            Array.map
              (fun g ->
                T.Trace_circuit.encode_input built (Tcmm_graph.Graph.adjacency g))
              gs
          in
          let br = Tcmm_threshold.Packed.run_batch ~domains ~ws packed inputs in
          Array.iteri
            (fun lane g ->
              incr total;
              let fires = Tcmm_threshold.Packed.batch_value br ~lane out in
              if fires = (Tcmm_graph.Triangles.count g >= tau) then incr agree)
            gs;
          remaining := !remaining - lanes
        done;
        Format.printf "batched: %d/%d further graphs agree with the exact count@."
          !agree !total;
        !agree = !total
      end
    in
    if fires = (exact >= tau) && ok_rest then 0 else 1
  in
  let p_term =
    Arg.(value & opt float 0.3 & info [ "p" ] ~docv:"P" ~doc:"Edge probability.")
  in
  let tau_term =
    Arg.(value & opt int 5 & info [ "t"; "tau" ] ~docv:"TAU" ~doc:"Triangle threshold.")
  in
  let graphs_term =
    Arg.(
      value & opt int 8
      & info [ "graphs" ] ~docv:"K"
          ~doc:
            "Total random graphs to query; draws beyond the first are \
             evaluated batched through a reused workspace.")
  in
  Cmd.v
    (Cmd.info "triangles" ~doc:"Threshold-query the triangle count of a random graph.")
    Term.(
      const run $ n_term $ d_term $ p_term $ tau_term $ seed_term $ engine_term
      $ domains_term $ graphs_term)

(* The streaming edge-flip scenario: hold a graph, send flips, and
   re-answer the triangle threshold query incrementally — locally
   through a [Packed.session], or against a running daemon's stateful
   protocol-v6 session. *)
let stream_cmd =
  let run n d p tau seed updates flips_per_update addr =
    let rng = Tcmm_util.Prng.create ~seed in
    let g = ref (Tcmm_graph.Generate.erdos_renyi rng ~n ~p) in
    let circuit_tau = 6 * tau in
    let random_flips () =
      List.init flips_per_update (fun _ ->
          let i = Tcmm_util.Prng.int rng ~bound:(n - 1) in
          let j = Tcmm_util.Prng.int_range rng ~lo:(i + 1) ~hi:(n - 1) in
          (i, j))
    in
    Format.printf "G(n=%d, p=%.2f): %d edges, %d triangles; tau = %d@." n p
      (Tcmm_graph.Graph.num_edges !g)
      (Tcmm_graph.Triangles.count !g)
      tau;
    let mismatches = ref 0 in
    let report step fires dirty total ms =
      let truth = Tcmm_graph.Triangles.count !g >= tau in
      if fires <> truth then incr mismatches;
      Format.printf
        "update %3d: >= %d triangles? %b (truth %b)  dirty %d/%d gates  %.3f ms@."
        step tau fires truth dirty total ms
    in
    (match addr with
    | Some addr ->
        (* Remote: the daemon holds the session; we only ship deltas.
           The input layout is reconstructed from the spec (trace
           circuits allocate the adjacency entries first, base 0) so no
           circuit is built client-side. *)
        let layout =
          T.Encode.restore ~rows:n ~cols:n ~entry_bits:1 ~signed:false ~base:0
        in
        let spec =
          {
            P.kind = P.Triangles;
            algo = "strassen";
            schedule = "thm45";
            d;
            n;
            entry_bits = 1;
            signed = false;
            tau;
            kronpow = false;
          }
        in
        let addr =
          match P.parse_addr addr with
          | Ok a -> a
          | Error msg -> failwith ("tcmm stream: " ^ msg)
        in
        Tcmm_server.Client.with_connection addr (fun cl ->
            match
              Tcmm_server.Client.open_session cl spec
                (Tcmm_graph.Graph.adjacency !g)
            with
            | Error e -> failwith ("open_session: " ^ e)
            | Ok so ->
                let sid = so.P.so_sid in
                Format.printf "session %d open: fires %b (%d firings)@." sid
                  so.P.so_fires so.P.so_firings;
                for step = 1 to updates do
                  let g', delta =
                    Tcmm_graph.Stream.delta ~layout !g (random_flips ())
                  in
                  g := g';
                  let t0 = Unix.gettimeofday () in
                  match Tcmm_server.Client.update cl ~sid delta with
                  | Error e -> failwith ("update: " ^ e)
                  | Ok u ->
                      report step u.P.ur_fires u.P.ur_dirty_gates u.P.ur_gates
                        ((Unix.gettimeofday () -. t0) *. 1e3)
                done;
                (match Tcmm_server.Client.close_session cl ~sid with
                | Ok () -> ()
                | Error e -> Format.printf "close_session: %s@." e))
    | None ->
        let algo = F.Instances.strassen in
        let profile = F.Sparsity.analyze algo in
        let schedule = T.Level_schedule.theorem45 ~profile ~d ~n in
        let built =
          T.Trace_circuit.build ~algo ~schedule ~entry_bits:1 ~tau:circuit_tau
            ~n ()
        in
        let packed = T.Trace_circuit.pack built in
        let layout = built.T.Trace_circuit.layout in
        let out = built.T.Trace_circuit.output in
        let session =
          Tcmm_threshold.Packed.session packed
            (T.Trace_circuit.encode_input built (Tcmm_graph.Graph.adjacency !g))
        in
        let gates = Tcmm_threshold.Packed.num_gates packed in
        let last_dirty = ref 0 in
        for step = 1 to updates do
          let g', delta = Tcmm_graph.Stream.delta ~layout !g (random_flips ()) in
          g := g';
          let t0 = Unix.gettimeofday () in
          let res = Tcmm_threshold.Packed.update session delta in
          let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
          let stats = Tcmm_threshold.Packed.session_stats session in
          let dirty = stats.Tcmm_threshold.Packed.su_dirty_gates - !last_dirty in
          last_dirty := stats.Tcmm_threshold.Packed.su_dirty_gates;
          let fires =
            Bytes.get res.Tcmm_threshold.Simulator.values out <> '\000'
          in
          report step fires dirty gates ms
        done;
        let s = Tcmm_threshold.Packed.session_stats session in
        Format.printf
          "session: %d updates, %d input flips, %d/%d gates re-decided (%.2f%%)@."
          s.Tcmm_threshold.Packed.su_updates s.Tcmm_threshold.Packed.su_flips
          s.Tcmm_threshold.Packed.su_dirty_gates
          (s.Tcmm_threshold.Packed.su_updates * s.Tcmm_threshold.Packed.su_gates)
          (100.
          *. float_of_int s.Tcmm_threshold.Packed.su_dirty_gates
          /. float_of_int
               (max 1
                  (s.Tcmm_threshold.Packed.su_updates
                  * s.Tcmm_threshold.Packed.su_gates))));
    if !mismatches = 0 then 0 else 1
  in
  let p_term =
    Arg.(value & opt float 0.3 & info [ "p" ] ~docv:"P" ~doc:"Edge probability.")
  in
  let tau_term =
    Arg.(value & opt int 5 & info [ "t"; "tau" ] ~docv:"TAU" ~doc:"Triangle threshold.")
  in
  let updates_term =
    Arg.(
      value & opt int 16
      & info [ "updates" ] ~docv:"K" ~doc:"Edge-flip updates to stream.")
  in
  let flips_term =
    Arg.(
      value & opt int 1
      & info [ "flips" ] ~docv:"B" ~doc:"Edge flips per update (delta batch size).")
  in
  let addr_opt_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "addr" ] ~docv:"ADDR"
          ~doc:
            "Stream against a running daemon's stateful session instead of \
             evaluating locally: $(b,HOST:PORT) for TCP, anything else is a \
             Unix socket path.")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Stream random edge flips through an incremental dirty-cone \
          session — local, or against a serving daemon (protocol v6) with \
          $(b,--addr).  Exits 1 if any update disagrees with the exact \
          triangle count.")
    Term.(
      const run $ n_term $ d_term $ p_term $ tau_term $ seed_term $ updates_term
      $ flips_term $ addr_opt_term)

let export_cmd =
  let run algo n d bits sched kind path =
    let schedule = resolve_schedule ~algo ~name:sched ~d ~n in
    let built =
      T.Trace_circuit.build ~algo ~schedule ~entry_bits:bits ~tau:1 ~n ()
    in
    match built.T.Trace_circuit.circuit with
    | None -> 1
    | Some c ->
        let contents =
          match kind with
          | "netlist" -> Tcmm_threshold.Export.to_netlist c
          | "dot" -> Tcmm_threshold.Export.to_dot ~max_gates:100000 c
          | k -> failwith (Printf.sprintf "unknown format %S (netlist|dot)" k)
        in
        Tcmm_threshold.Export.write_file path contents;
        Format.printf "wrote %s (%s, %s)@." path kind
          (Tcmm_threshold.Stats.to_row (T.Trace_circuit.stats built));
        0
  in
  let kind_term =
    Arg.(value & opt string "netlist" & info [ "f"; "format" ] ~docv:"FMT" ~doc:"netlist or dot.")
  in
  let path_term =
    Arg.(value & opt string "circuit.tcmm" & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Build a trace circuit and write it as a netlist or GraphViz DOT file.")
    Term.(const run $ algo_term $ n_term $ d_term $ bits_term $ schedule_term $ kind_term $ path_term)

let orbit_cmd =
  let run algo limit =
    (match F.Sparsity.analyze algo with
    | p -> Format.printf "start: %s, sparsity %d@." algo.F.Bilinear.name p.F.Sparsity.sparsity
    | exception Invalid_argument _ -> ());
    let r =
      match limit with
      | 0 -> F.Orbit.search algo
      | l -> F.Orbit.search ~limit:l algo
    in
    Format.printf
      "searched %d unimodular sandwiching triples; best sparsity in orbit: %d (%s)@."
      r.F.Orbit.triples_tried r.F.Orbit.sparsity
      (if r.F.Orbit.better_than_start then "improved" else "no improvement");
    if r.F.Orbit.better_than_start then
      Format.printf "improved algorithm:@.%a@." F.Bilinear.pp r.F.Orbit.algorithm;
    0
  in
  let limit_term =
    Arg.(value & opt int 0 & info [ "limit" ] ~docv:"K" ~doc:"Cap triples (0 = exhaustive).")
  in
  Cmd.v
    (Cmd.info "orbit"
       ~doc:"Search the algorithm's unimodular sandwiching orbit for minimum sparsity.")
    Term.(const run $ algo_term $ limit_term)

(* ------------------------------------------------------------------ *)

let addr_term =
  Arg.(
    value
    & opt string "/tmp/tcmm.sock"
    & info [ "addr" ] ~docv:"ADDR"
        ~doc:"Server address: $(b,HOST:PORT) for TCP, anything else is a Unix socket path.")

let serve_cmd =
  let run addr cache lanes flush domains no_templates profile no_kernels
      profile_eval max_pending deadline grace store workers reuseport control
      verbose =
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info));
    match P.parse_addr addr with
    | Error msg ->
        Format.eprintf "tcmm serve: %s@." msg;
        1
    | Ok a -> (
        let cfg =
          {
            (Tcmm_server.Server.default_config a) with
            cache_capacity = cache;
            flush_ms = flush;
            max_lanes = lanes;
            domains;
            templates = not no_templates;
            kernels = not no_kernels;
            profile_build = profile;
            profile_eval;
            max_pending;
            deadline_ms = deadline;
            grace_s = grace;
            store;
          }
        in
        if workers <= 1 then (
          Tcmm_server.Server.serve cfg;
          0)
        else
          let control =
            match control with
            | None -> Ok None
            | Some c -> Result.map Option.some (P.parse_addr c)
          in
          match control with
          | Error msg ->
              Format.eprintf "tcmm serve: --control: %s@." msg;
              1
          | Ok control -> (
              match
                {
                  (Tcmm_server.Fleet.default_config cfg) with
                  workers;
                  reuseport;
                  control;
                }
              with
              | fleet_cfg -> (
                  try
                    Tcmm_server.Fleet.run fleet_cfg;
                    0
                  with Invalid_argument msg ->
                    Format.eprintf "tcmm serve: %s@." msg;
                    1)))
  in
  let cache_term =
    Arg.(
      value & opt int 8
      & info [ "cache" ] ~docv:"K" ~doc:"Compiled circuits kept resident (LRU).")
  in
  let lanes_term =
    Arg.(
      value & opt int 62
      & info [ "lanes" ] ~docv:"K" ~doc:"Max lanes per coalesced batch (1-62).")
  in
  let flush_term =
    Arg.(
      value & opt float 0.
      & info [ "flush-ms" ] ~docv:"MS"
          ~doc:
            "Batch flush deadline in milliseconds; 0 flushes adaptively as soon as \
             the input drains.")
  in
  let verbose_term =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.")
  in
  let pending_term =
    Arg.(
      value & opt int 0
      & info [ "max-pending" ] ~docv:"K"
          ~doc:
            "Shed run requests (reply Overloaded) once $(docv) are queued; 0 = \
             unbounded.")
  in
  let deadline_term =
    Arg.(
      value & opt float 0.
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline: a run still queued after $(docv) ms is \
             answered Deadline_exceeded; 0 = none.")
  in
  let grace_term =
    Arg.(
      value & opt float 5.
      & info [ "grace" ] ~docv:"SECONDS"
          ~doc:"Drain grace period after Shutdown or SIGTERM.")
  in
  let store_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Persistent artifact directory: cache misses load compiled \
             circuits from $(docv) by mmap instead of rebuilding, and fresh \
             builds are persisted there for the next process.")
  in
  let workers_term =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"K"
          ~doc:
            "Serve as a $(docv)-worker fleet: a supervisor binds the (TCP) \
             front socket once, forks $(docv) workers that inherit it, \
             restarts crashed workers warm from the store, and answers \
             roster/metrics requests on a control socket.  1 = the \
             single-process daemon.")
  in
  let reuseport_term =
    Arg.(
      value & flag
      & info [ "reuseport" ]
          ~doc:
            "Fleet variant: one SO_REUSEPORT front socket per worker \
             (kernel connection hashing) instead of a single shared \
             inherited socket.")
  in
  let control_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "control" ] ~docv:"ADDR"
          ~doc:
            "Fleet control-plane address for $(b,tcmm fleet-status); \
             default is an ephemeral TCP port on the front host (logged at \
             startup).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve compiled circuits over a socket with caching and request coalescing.")
    Term.(
      const run $ addr_term $ cache_term $ lanes_term $ flush_term $ domains_term
      $ no_templates_term $ profile_build_term $ no_kernels_term
      $ profile_eval_term $ pending_term $ deadline_term
      $ grace_term $ store_term $ workers_term $ reuseport_term $ control_term
      $ verbose_term)

let fleet_status_cmd =
  let run control =
    let fail msg =
      Format.eprintf "tcmm fleet-status: %s@." msg;
      1
    in
    match P.parse_addr control with
    | Error msg -> fail msg
    | Ok a -> (
        try
          Tcmm_server.Client.with_connection a (fun cl ->
              match Tcmm_server.Client.request cl P.Fleet with
              | Error msg -> fail msg
              | Ok (P.Error msg) -> fail msg
              | Ok (P.Fleet_result ws) -> (
                  List.iter
                    (fun w ->
                      Format.printf "worker %d: pid %d at %s, %d restart(s)%s@."
                        w.P.fw_id w.P.fw_pid w.P.fw_addr w.P.fw_restarts
                        (if w.P.fw_alive then "" else " [down]"))
                    ws;
                  match Tcmm_server.Client.request cl P.Metrics with
                  | Error msg -> fail msg
                  | Ok (P.Error msg) -> fail msg
                  | Ok (P.Metrics_result m) ->
                      Format.printf "fleet-wide:@.%a@." P.pp_metrics m;
                      0
                  | Ok _ -> fail "unexpected response to metrics")
              | Ok _ -> fail "unexpected response to fleet")
        with Unix.Unix_error (e, _, _) ->
          fail
            (Printf.sprintf "cannot reach supervisor at %s: %s" control
               (Unix.error_message e)))
  in
  let control_term =
    Arg.(
      required
      & opt (some string) None
      & info [ "control" ] ~docv:"ADDR"
          ~doc:"The fleet supervisor's control address (logged at startup).")
  in
  Cmd.v
    (Cmd.info "fleet-status"
       ~doc:
         "Query a running fleet supervisor: worker roster (pids, endpoints, \
          restart counts) and fleet-wide aggregated metrics.")
    Term.(const run $ control_term)

let request_cmd =
  let run addr what algo n d bits sched signed tau kronpow seed count =
    let algo_name = algo.F.Bilinear.name in
    let kind =
      match what with
      | "trace" -> P.Trace
      | "triangles" -> P.Triangles
      | _ -> P.Matmul
    in
    let spec =
      { P.kind; algo = algo_name; schedule = sched; d; n; entry_bits = bits;
        signed; tau; kronpow }
    in
    let fail msg =
      Format.eprintf "tcmm request: %s@." msg;
      1
    in
    match P.parse_addr addr with
    | Error msg -> fail msg
    | Ok a -> (
        let one cl req ok =
          match Tcmm_server.Client.request cl req with
          | Error msg -> fail msg
          | Ok (P.Error msg) -> fail msg
          | Ok resp -> ok resp
        in
        try
          Tcmm_server.Client.with_connection a (fun cl ->
              match what with
              | "ping" ->
                  one cl P.Ping (function
                    | P.Pong ->
                        Format.printf "pong@.";
                        0
                    | _ -> fail "unexpected response")
              | "shutdown" ->
                  one cl P.Shutdown (function
                    | P.Shutting_down ->
                        Format.printf "server shutting down@.";
                        0
                    | _ -> fail "unexpected response")
              | "metrics" ->
                  one cl P.Metrics (function
                    | P.Metrics_result m ->
                        Format.printf "%a@." P.pp_metrics m;
                        0
                    | _ -> fail "unexpected response")
              | "compile" ->
                  one cl (P.Compile spec) (function
                    | P.Compiled c ->
                        Format.printf "%s in %.3fs: %s@."
                          (if c.P.cached then "cached"
                           else if c.P.loaded then "loaded from store"
                           else "built")
                          c.P.build_seconds
                          (Tcmm_threshold.Stats.to_row c.P.stats);
                        0
                    | _ -> fail "unexpected response")
              | "stats" ->
                  one cl (P.Stats spec) (function
                    | P.Stats_result s ->
                        Format.printf "%s@." (Tcmm_threshold.Stats.to_row s);
                        0
                    | _ -> fail "unexpected response")
              | "matmul" | "trace" | "triangles" ->
                  (* Pipelined: write the whole burst, then read it back —
                     exactly the pattern the server coalesces into batches. *)
                  let rng = Tcmm_util.Prng.create ~seed in
                  let hi = (1 lsl bits) - 1 in
                  let lo = if signed then -hi else 0 in
                  let reqs =
                    List.init count (fun _ ->
                        match kind with
                        | P.Matmul ->
                            let a = F.Matrix.random rng ~rows:n ~cols:n ~lo ~hi in
                            let b = F.Matrix.random rng ~rows:n ~cols:n ~lo ~hi in
                            P.Run_matmul (spec, a, b)
                        | P.Trace ->
                            let m = F.Matrix.random rng ~rows:n ~cols:n ~lo ~hi in
                            P.Run_trace (spec, m)
                        | P.Triangles ->
                            let m = F.Matrix.random rng ~rows:n ~cols:n ~lo ~hi in
                            P.Run_triangles (spec, m)
                        | P.Conv -> assert false (* [kind] above never maps to it *))
                  in
                  let t0 = Unix.gettimeofday () in
                  List.iter (Tcmm_server.Client.send cl) reqs;
                  let correct = ref 0 and errors = ref 0 in
                  List.iter
                    (fun req ->
                      match (Tcmm_server.Client.recv cl, req) with
                      | Ok (P.Matmul_result (c, _)), P.Run_matmul (_, a, b) ->
                          if F.Matrix.equal c (F.Matrix.mul a b) then incr correct
                      | Ok (P.Trace_result (fires, _)), P.Run_trace (_, m) ->
                          if fires = (T.Trace_circuit.reference m >= tau) then
                            incr correct
                      | Ok (P.Triangles_result (fires, _)), P.Run_triangles (_, m)
                        ->
                          if fires = (T.Trace_circuit.reference m >= 6 * tau) then
                            incr correct
                      | Ok (P.Error msg), _ ->
                          incr errors;
                          Format.eprintf "server error: %s@." msg
                      | Ok _, _ -> incr errors
                      | Error msg, _ ->
                          incr errors;
                          Format.eprintf "transport error: %s@." msg)
                    reqs;
                  let dt = Unix.gettimeofday () -. t0 in
                  Format.printf
                    "%d/%d responses match the integer reference (%d errors) in \
                     %.3fs (%.0f req/s)@."
                    !correct count !errors dt
                    (float_of_int count /. dt);
                  if !correct = count then 0 else 1
              | w -> fail (Printf.sprintf "unknown request kind %S" w))
        with Unix.Unix_error (e, _, _) ->
          fail (Printf.sprintf "cannot reach server at %s: %s" addr (Unix.error_message e)))
  in
  let what_term =
    Arg.(
      value
      & pos 0 string "ping"
      & info [] ~docv:"WHAT"
          ~doc:
            "One of: ping, metrics, compile, stats, matmul, trace, triangles, \
             shutdown.")
  in
  let signed_term =
    Arg.(value & flag & info [ "signed" ] ~doc:"Signed matrix entries.")
  in
  let tau_term =
    Arg.(value & opt int 1 & info [ "t"; "tau" ] ~docv:"TAU" ~doc:"Trace/triangle threshold.")
  in
  let count_term =
    Arg.(
      value & opt int 1
      & info [ "c"; "count" ] ~docv:"K"
          ~doc:"Pipelined run requests to send (the server coalesces them).")
  in
  Cmd.v
    (Cmd.info "request" ~doc:"Query a running tcmm serve daemon.")
    Term.(
      const run $ addr_term $ what_term $ algo_term $ n_term $ d_term $ bits_term
      $ schedule_term $ signed_term $ tau_term $ kronpow_term $ seed_term
      $ count_term)

(* Served convolutional inference: draw a deterministic image/kernel
   workload, ship it to a running daemon as im2col jobs over the matmul
   circuit (protocol v7 [Run_conv]), and demand every returned score
   plane be bit-identical to the direct convolution computed locally. *)
let infer_cmd =
  let module Cn = Tcmm_convnet in
  let run addr algo d bits sched signed kronpow q stride channels height width
      nkernels n_opt seed count =
    let fail msg =
      Format.eprintf "tcmm infer: %s@." msg;
      1
    in
    let rng = Tcmm_util.Prng.create ~seed in
    let hi = (1 lsl bits) - 1 in
    let lo = if signed then -hi else 0 in
    let kernels =
      Array.init nkernels (fun _ ->
          Cn.Image.random (Tcmm_util.Prng.split rng) ~channels ~height:q
            ~width:q ~lo ~hi)
    in
    let images =
      List.init count (fun _ ->
          Cn.Image.random (Tcmm_util.Prng.split rng) ~channels ~height ~width
            ~lo ~hi)
    in
    let cspec = { Cn.Im2col.q; stride } in
    match
      match images with
      | [] -> Error "count must be at least 1"
      | image :: _ -> (
          match Cn.Conv.circuit_size cspec image kernels ~t_dim:algo.F.Bilinear.t_dim with
          | n -> Ok n
          | exception Invalid_argument msg -> Error msg)
    with
    | Error msg -> fail msg
    | Ok auto_n -> (
        let n = Option.value n_opt ~default:auto_n in
        let spec =
          { P.kind = P.Conv; algo = algo.F.Bilinear.name; schedule = sched; d;
            n; entry_bits = bits; signed; tau = 0; kronpow }
        in
        let jobs =
          List.map
            (fun image ->
              ( image,
                { P.cj_q = q; cj_stride = stride; cj_image = image;
                  cj_kernels = kernels } ))
            images
        in
        match P.parse_addr addr with
        | Error msg -> fail msg
        | Ok a -> (
            try
              Tcmm_server.Client.with_connection a (fun cl ->
                  let t0 = Unix.gettimeofday () in
                  (* Pipelined like `tcmm request`: the whole burst goes out
                     before any reply is read, so the server batches the
                     underlying matmul evaluations. *)
                  List.iter
                    (fun (_, job) ->
                      Tcmm_server.Client.send cl (P.Run_conv (spec, job)))
                    jobs;
                  let correct = ref 0 and errors = ref 0 in
                  List.iter
                    (fun (image, _) ->
                      match Tcmm_server.Client.recv cl with
                      | Ok (P.Conv_result (scores, _firings)) ->
                          if scores = Cn.Conv.direct cspec image kernels then
                            incr correct
                          else (
                            incr errors;
                            Format.eprintf
                              "served scores differ from direct convolution@.")
                      | Ok (P.Error msg) ->
                          incr errors;
                          Format.eprintf "server error: %s@." msg
                      | Ok _ ->
                          incr errors;
                          Format.eprintf "unexpected response@."
                      | Error msg ->
                          incr errors;
                          Format.eprintf "transport error: %s@." msg)
                    jobs;
                  let dt = Unix.gettimeofday () -. t0 in
                  let out_h, out_w =
                    Cn.Im2col.output_dims cspec (List.hd images)
                  in
                  Format.printf
                    "%d/%d served inferences bit-identical to direct \
                     convolution (%d errors) in %.3fs — %d %dx%dx%d \
                     image(s), %d %dx%d kernel(s), %dx%d score planes via \
                     n=%d circuit%s@."
                    !correct count !errors dt count channels height width
                    nkernels q q out_h out_w n
                    (if kronpow then " (kronpow)" else "");
                  if !correct = count then 0 else 1)
            with Unix.Unix_error (e, _, _) ->
              fail
                (Printf.sprintf "cannot reach server at %s: %s" addr
                   (Unix.error_message e))))
  in
  let q_term =
    Arg.(
      value & opt int 2
      & info [ "q" ] ~docv:"Q" ~doc:"Kernel side length (q x q kernels).")
  in
  let stride_term =
    Arg.(value & opt int 1 & info [ "stride" ] ~docv:"S" ~doc:"Patch stride.")
  in
  let channels_term =
    Arg.(
      value & opt int 1
      & info [ "channels" ] ~docv:"C" ~doc:"Image (and kernel) channels.")
  in
  let height_term =
    Arg.(value & opt int 4 & info [ "height" ] ~docv:"H" ~doc:"Image height.")
  in
  let width_term =
    Arg.(value & opt int 4 & info [ "width" ] ~docv:"W" ~doc:"Image width.")
  in
  let kernels_term =
    Arg.(
      value & opt int 2
      & info [ "kernels" ] ~docv:"K" ~doc:"Number of kernels (score planes).")
  in
  let n_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "n" ] ~docv:"N"
          ~doc:
            "Circuit dimension (default: the smallest power of the \
             algorithm's T that fits the im2col operands).")
  in
  let count_term =
    Arg.(
      value & opt int 1
      & info [ "c"; "count" ] ~docv:"K"
          ~doc:"Images to infer in one pipelined burst.")
  in
  let signed_term =
    Arg.(value & flag & info [ "signed" ] ~doc:"Signed pixel/weight values.")
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:
         "Run convolutional inference through a tcmm serve daemon: each \
          image's im2col patch matrix is multiplied against the kernel \
          matrix by the served threshold circuit, and every returned score \
          plane is checked bit-identical against the direct convolution.")
    Term.(
      const run $ addr_term $ algo_term $ d_term $ bits_term $ schedule_term
      $ signed_term $ kronpow_term $ q_term $ stride_term $ channels_term
      $ height_term $ width_term $ kernels_term $ n_term $ seed_term
      $ count_term)

let check_cmd =
  let run cases incremental_cases mutants seed skip_server corpus algo json_path
      =
    (match algo with
    | Some a when Result.is_error (algo_by_name a) ->
        Format.eprintf "tcmm check: unknown algorithm %S@." a;
        exit 2
    | _ -> ());
    let report =
      Tcmm_check.Harness.run ~seed ~cases ?incremental_cases ~mutants
        ~include_server:(not skip_server) ?corpus_dir:corpus ?algo ()
    in
    Tcmm_check.Harness.print_report report;
    (match json_path with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Tcmm_check.Harness.to_json report));
        Printf.printf "wrote %s\n" path
    | None -> ());
    if Tcmm_check.Harness.all_ok report then 0 else 1
  in
  let cases_term =
    Arg.(
      value & opt int 50
      & info [ "cases" ] ~docv:"K" ~doc:"Differential fuzz cases to run.")
  in
  let incremental_cases_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "incremental-cases" ] ~docv:"K"
          ~doc:
            "Edge-flip sequences for the incremental dirty-cone fuzz leg \
             (default: same as $(b,--cases)).")
  in
  let mutants_term =
    Arg.(
      value & opt int 120
      & info [ "mutants" ] ~docv:"K" ~doc:"Circuit mutants for the kill-rate sweep.")
  in
  let skip_server_term =
    Arg.(
      value & flag
      & info [ "skip-server" ]
          ~doc:"Skip the forked loopback-server fuzzing leg.")
  in
  let corpus_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Regression corpus directory: replay every stored case first, \
             persist newly shrunk counterexamples.")
  in
  let algo_slice_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:
            "Pin every certificate and fuzz case to one algorithm (its \
             sizes follow the algorithm's power ladder) — the CI \
             per-algorithm slice.")
  in
  let json_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the full report as JSON.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Certify circuit structure against the paper's bounds, \
          differential-fuzz all evaluation paths, and mutation-test the \
          oracle (exit 1 on any violation or a kill rate below 95%).")
    Term.(
      const run $ cases_term $ incremental_cases_term $ mutants_term $ seed_term
      $ skip_server_term $ corpus_term $ algo_slice_term $ json_term)

let chaos_cmd =
  let run requests fault_rate workers seed json_path =
    let outcome = Tcmm_check.Chaos.run ~seed ~requests ~fault_rate ~workers () in
    Tcmm_check.Chaos.print_report outcome;
    (match json_path with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Tcmm_check.Chaos.to_json outcome));
        Printf.printf "wrote %s\n" path
    | None -> ());
    if Tcmm_check.Chaos.ok outcome then 0 else 1
  in
  let requests_term =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"K"
          ~doc:"Requests in the fault-soak segment.")
  in
  let rate_term =
    Arg.(
      value & opt float 0.25
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:"Per-request fault-injection probability in [0,1].")
  in
  let json_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the outcome as JSON.")
  in
  let workers_term =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"K"
          ~doc:
            "Soak a $(docv)-worker fleet instead of a single daemon: \
             requests route through the spec-affinity shard router while \
             random workers are SIGKILLed at the fault rate; ends with \
             fleet-wide summed accounting checks and a supervisor SIGTERM \
             drain.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Soak the serving stack under injected transport and process \
          faults: truncation, corruption, stalls, resets, reordering, \
          kill-and-restart, overload shedding, deadline expiry, and a \
          SIGTERM drain.  Every completed response must be bit-identical \
          to the direct circuit evaluation and every failure typed (exit \
          1 on any violation).")
    Term.(
      const run $ requests_term $ rate_term $ workers_term $ seed_term
      $ json_term)

(* ------------------------------------------------------------------ *)

let store_dir_term =
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR" ~doc:"Artifact directory.")

(* Offline batch compilation: build each requested circuit through the
   same cache + store tier the daemon uses, so a later `serve --store`
   (or another `compile`) finds the artifacts warm.  A spec already in
   the store is loaded (and verified) rather than rebuilt. *)
let compile_cmd =
  let run store_dir what algo ns d bits sched signed tau kronpow no_templates
      no_kernels verbose =
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning));
    let kind =
      match what with
      | "trace" -> P.Trace
      | "triangles" -> P.Triangles
      | _ -> P.Matmul
    in
    match Tcmm_store.Store.create ~kernels:(not no_kernels) ~dir:store_dir () with
    | Error msg ->
        Format.eprintf "tcmm compile: %s@." msg;
        1
    | Ok store ->
        let cc =
          Tcmm_server.Circuit_cache.create ~templates:(not no_templates)
            ~kernels:(not no_kernels) ~store ~capacity:1 ()
        in
        let failures = ref 0 in
        List.iter
          (fun n ->
            let spec =
              { P.kind; algo = algo.F.Bilinear.name; schedule = sched; d; n;
                entry_bits = bits; signed; tau; kronpow }
            in
            let key = Tcmm_server.Circuit_cache.key spec in
            match Tcmm_server.Circuit_cache.find_or_build cc spec with
            | Error msg ->
                incr failures;
                Format.eprintf "%s: %s@." key msg
            | Ok (entry, outcome) ->
                Format.printf "%s: %s in %.3fs (%s)@." key
                  (match outcome with
                  | Tcmm_server.Circuit_cache.Built -> "built and stored"
                  | Tcmm_server.Circuit_cache.Loaded -> "already stored, loaded"
                  | Tcmm_server.Circuit_cache.Cached -> "cached")
                  entry.Tcmm_server.Circuit_cache.build_seconds
                  (Tcmm_threshold.Stats.to_row
                     entry.Tcmm_server.Circuit_cache.stats))
          ns;
        let c = Tcmm_store.Store.counters store in
        Format.printf "store %s: %d saved, %d loaded, %d invalid@." store_dir
          c.Tcmm_store.Store.saves c.Tcmm_store.Store.loads
          c.Tcmm_store.Store.invalid;
        if !failures = 0 then 0 else 1
  in
  let what_term =
    Arg.(
      value
      & opt string "matmul"
      & info [ "kind" ] ~docv:"KIND" ~doc:"matmul, trace, or triangles.")
  in
  let ns_term =
    Arg.(
      value
      & opt_all int [ 16 ]
      & info [ "n" ] ~docv:"N"
          ~doc:"Matrix dimension; repeatable for a batch of sizes.")
  in
  let signed_term =
    Arg.(value & flag & info [ "signed" ] ~doc:"Signed matrix entries.")
  in
  let tau_term =
    Arg.(
      value & opt int 1
      & info [ "t"; "tau" ] ~docv:"TAU" ~doc:"Trace/triangle threshold.")
  in
  let verbose_term =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log store activity.")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile circuits offline into a persistent artifact store, so a \
          later $(b,tcmm serve --store) starts warm: every cache miss \
          becomes a single mmap load instead of a multi-second build.")
    Term.(
      const run $ store_dir_term $ what_term $ algo_term $ ns_term $ d_term
      $ bits_term $ schedule_term $ signed_term $ tau_term $ kronpow_term
      $ no_templates_term $ no_kernels_term $ verbose_term)

let artifacts_cmd =
  let module A = Tcmm_store.Artifact in
  let module St = Tcmm_store.Store in
  let with_store dir k =
    match St.create ~dir () with
    | Error msg ->
        Format.eprintf "tcmm artifacts: %s@." msg;
        1
    | Ok store -> k store
  in
  let run store_dir action target =
    with_store store_dir (fun store ->
        match action with
        | "list" ->
            let entries = St.list store in
            List.iter
              (fun (file, r) ->
                match r with
                | Ok (h, bytes) ->
                    Format.printf "%-48s %9d KiB  %8d gates  %s@." file
                      (bytes / 1024) h.A.h_num_gates h.A.h_key
                | Error msg -> Format.printf "%-48s UNREADABLE: %s@." file msg)
              entries;
            Format.printf "%d artifact(s) in %s@." (List.length entries)
              store_dir;
            0
        | "inspect" -> (
            match target with
            | None ->
                Format.eprintf "tcmm artifacts inspect: missing FILE@.";
                1
            | Some file -> (
                let path =
                  if Sys.file_exists file then file
                  else Filename.concat store_dir file
                in
                match A.read_header ~path with
                | Ok (h, bytes) ->
                    Format.printf "%s (%d bytes)@.%a@." path bytes A.pp_header h;
                    0
                | Error msg ->
                    Format.eprintf "%s: %s@." path msg;
                    1))
        | "verify" ->
            (* Full payload verification (checksums, bounds, kernel tags)
               via the real load path — not just headers. *)
            let bad = ref 0 in
            List.iter
              (fun (file, _) ->
                let path = Filename.concat store_dir file in
                match A.read ~path () with
                | Ok a ->
                    Format.printf "%-48s OK (%d bytes%s)@." file a.A.a_bytes
                      (if a.A.a_kern_recompiled then ", kernels recompiled"
                       else "")
                | Error msg ->
                    incr bad;
                    Format.printf "%-48s INVALID: %s@." file msg)
              (St.list store);
            if !bad = 0 then 0
            else begin
              Format.printf "%d invalid artifact(s)@." !bad;
              1
            end
        | "gc" ->
            let freed =
              St.gc store ~removed:(fun f -> Format.printf "removed %s@." f)
            in
            Format.printf "freed %d bytes@." freed;
            0
        | a ->
            Format.eprintf
              "tcmm artifacts: unknown action %S (list|inspect|verify|gc)@." a;
            1)
  in
  let action_term =
    Arg.(
      value
      & pos 0 string "list"
      & info [] ~docv:"ACTION" ~doc:"One of: list, inspect, verify, gc.")
  in
  let target_term =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"FILE" ~doc:"Artifact file for $(b,inspect).")
  in
  Cmd.v
    (Cmd.info "artifacts"
       ~doc:
         "List, inspect, verify, or garbage-collect a compiled-circuit \
          artifact store: dump self-describing headers, re-checksum \
          payloads, and remove quarantined or stale files.")
    Term.(const run $ store_dir_term $ action_term $ target_term)

let () =
  let doc = "Constant-depth threshold circuits for matrix multiplication (SPAA 2018)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "tcmm" ~doc)
          [
            algorithms_cmd; stats_cmd; verify_cmd; triangles_cmd; stream_cmd;
            export_cmd; orbit_cmd; serve_cmd; fleet_status_cmd; request_cmd;
            infer_cmd; compile_cmd; artifacts_cmd; check_cmd; chaos_cmd;
          ]))
