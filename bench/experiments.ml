(* The experiment tables E1..E10 (see DESIGN.md and EXPERIMENTS.md).

   Every table prints the exact quantity the corresponding paper claim is
   about; EXPERIMENTS.md records paper-vs-measured for each. *)

module F = Tcmm_fastmm
module T = Tcmm
module G = Tcmm_graph
module C = Tcmm_convnet
module Tb = Tcmm_util.Tablefmt
module Stats = Tcmm_threshold.Stats
module Builder = Tcmm_threshold.Builder

let strassen = F.Instances.strassen
let profile = F.Sparsity.analyze strassen

let analyzable_algos () =
  List.filter_map
    (fun algo ->
      match F.Sparsity.analyze algo with
      | p -> Some (algo, p)
      | exception Invalid_argument _ -> None)
    (F.Instances.all ())

(* ------------------------------------------------------------------ *)

let e1 () =
  Bench_util.header
    "E1: algorithm parameter table (Definition 2.1; paper Sec. 2.1/4.3 constants)";
  let rows =
    List.map
      (fun ((algo : F.Bilinear.t), (p : F.Sparsity.profile)) ->
        [
          Tb.Str algo.F.Bilinear.name;
          Tb.Int algo.F.Bilinear.t_dim;
          Tb.Int algo.F.Bilinear.rank;
          Tb.Float p.F.Sparsity.omega;
          Tb.Int p.F.Sparsity.a.F.Sparsity.total;
          Tb.Int p.F.Sparsity.b.F.Sparsity.total;
          Tb.Int p.F.Sparsity.c.F.Sparsity.total;
          Tb.Float p.F.Sparsity.overall.F.Sparsity.alpha;
          Tb.Float p.F.Sparsity.overall.F.Sparsity.beta;
          Tb.Float p.F.Sparsity.overall.F.Sparsity.gamma;
          Tb.Float p.F.Sparsity.c_const;
          Tb.Str
            (String.concat ","
               (Array.to_list (Array.map string_of_int p.F.Sparsity.c_prime)));
        ])
      (analyzable_algos ())
  in
  Tb.print ~title:"sparsity profiles (all verified against Brent's equations)"
    ~header:
      [ "algorithm"; "T"; "r"; "omega"; "s_A"; "s_B"; "s_C"; "alpha"; "beta"; "gamma"; "c"; "c'_j" ]
    ~rows;
  Printf.printf
    "paper values for Strassen: alpha=7/12=0.5833, beta=3, gamma~0.491, c~1.585, \
     c'=(4,2,2,4)\n"

(* ------------------------------------------------------------------ *)

let trace_gates ?(entry_bits = 1) ~algo ~schedule ~n () =
  (T.Gate_count.trace ~algo ~schedule ~entry_bits ~n ()).T.Gate_count.gates

(* The paper's input regime: O(log N)-bit entries. *)
let log_bits n = max 1 (Tcmm_util.Ilog.ceil_log2 n)

let e2 () =
  Bench_util.header
    "E2: trace(A^3)>=tau exact gate counts vs the naive depth-2 circuit (Thm 4.5 vs Sec. 1)";
  let ds = [ 2; 4; 6; 8 ] in
  let ns = [ 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096; 8192 ] in
  let rows =
    List.filter_map
      (fun n ->
        let b = log_bits n in
        match
          let naive = fst (T.Naive_circuits.trace_counts ~entry_bits:b ~n ()) in
          let ours =
            List.map
              (fun d ->
                let schedule = T.Level_schedule.theorem45 ~profile ~d ~n in
                trace_gates ~entry_bits:b ~algo:strassen ~schedule ~n ())
              ds
          in
          (naive, ours)
        with
        | naive, ours ->
            let best = List.fold_left min max_int ours in
            Some
              (Tb.Int n :: Tb.Int b :: Tb.Int naive
              :: (List.map (fun g -> Tb.Int g) ours
                 @ [ Tb.Ratio (float_of_int naive /. float_of_int best) ]))
        | exception Tcmm_util.Checked.Overflow _ -> None)
      ns
  in
  Tb.print
    ~title:
      "exact gate counts, log2(N)-bit entries — the paper's regime (naive = N^3*b^3+1 \
       gates at depth 2; ours = Thm 4.5 schedules)"
    ~header:[ "N"; "bits"; "naive"; "d=2"; "d=4"; "d=6"; "d=8"; "naive/best" ]
    ~rows;
  Printf.printf
    "claim (Sec. 1): for d > 3 the circuit has O(N^(3-eps)) gates, so naive/best must \
     grow once N is large enough; the crossover itself sits beyond this table — see the \
     extrapolation in E4.\n"

(* ------------------------------------------------------------------ *)

let e3 () =
  Bench_util.header "E3: measured depth vs the paper's bounds (Thm 4.5: 2d+5; Thm 4.9: 4d+1)";
  let n = 32 in
  let rows =
    List.map
      (fun d ->
        let schedule = T.Level_schedule.theorem45 ~profile ~d ~n in
        let trace =
          T.Trace_circuit.build ~mode:Builder.Count_only ~algo:strassen ~schedule
            ~entry_bits:1 ~tau:1 ~n ()
        in
        let matmul =
          T.Matmul_circuit.build ~mode:Builder.Count_only ~algo:strassen ~schedule
            ~entry_bits:1 ~n ()
        in
        let td = (T.Trace_circuit.stats trace).Stats.depth in
        let md = (T.Matmul_circuit.stats matmul).Stats.depth in
        [
          Tb.Int d;
          Tb.Int (T.Level_schedule.steps schedule);
          Tb.Int td;
          Tb.Int (T.Gate_model.trace_depth_bound ~d);
          Tb.Str (if td <= T.Gate_model.trace_depth_bound ~d then "ok" else "VIOLATED");
          Tb.Int md;
          Tb.Int (T.Gate_model.matmul_depth_bound ~d);
          Tb.Str (if md <= T.Gate_model.matmul_depth_bound ~d then "ok" else "VIOLATED");
        ])
      [ 1; 2; 3; 4 ]
  in
  Tb.print ~title:(Printf.sprintf "depths at N=%d (count-only builds)" n)
    ~header:
      [ "d"; "levels t"; "trace depth"; "2d+5"; "trace"; "matmul depth"; "4d+1"; "matmul" ]
    ~rows

(* ------------------------------------------------------------------ *)

let e4 () =
  Bench_util.header
    "E4: empirical gate-count exponent vs predicted omega + c*gamma^d (Thm 4.5)";
  let ns = [ 256; 512; 1024; 2048; 4096 ] in
  let polylog n = log (float_of_int n) ** 3. in
  let fits d =
    let points =
      List.map
        (fun n ->
          let schedule = T.Level_schedule.theorem45 ~profile ~d ~n in
          (float_of_int n, float_of_int (trace_gates ~algo:strassen ~schedule ~n ())))
        ns
    in
    let raw = T.Gate_model.fit_exponent points in
    let adjusted =
      T.Gate_model.fit_exponent
        (List.map (fun (n, g) -> (n, g /. polylog (int_of_float n))) points)
    in
    (raw, adjusted)
  in
  let rows =
    List.map
      (fun d ->
        let raw, adjusted = fits d in
        let predicted = T.Gate_model.exponent profile ~d in
        [
          Tb.Int d;
          Tb.Float raw;
          Tb.Float adjusted;
          Tb.Float predicted;
          Tb.Float (adjusted -. predicted);
        ])
      [ 1; 2; 3; 4; 6; 8 ]
  in
  let naive_points =
    List.map
      (fun n ->
        (float_of_int n, float_of_int (fst (T.Naive_circuits.trace_counts ~entry_bits:1 ~n ()))))
      ns
  in
  Tb.print
    ~title:
      (Printf.sprintf
         "log-log slope of exact gate counts, N in {256..4096}, binary entries (naive \
          slope: %.4f; omega = %.4f).  The adjusted column divides out the log^3 N \
          polylog of the Lemma 3.3 product layer (the O~ factor)."
         (T.Gate_model.fit_exponent naive_points)
         profile.F.Sparsity.omega)
    ~header:
      [ "d"; "raw slope"; "slope of gates/log^3 N"; "omega + c*gamma^d"; "residual" ]
    ~rows;
  (* Theorem 4.9 (matrix product): same exponent claim, measured through
     the matmul counting DP (trees + products + combine tree). *)
  let matmul_ns = [ 32; 64; 128; 256 ] in
  let rows =
    List.map
      (fun d ->
        let points =
          List.map
            (fun n ->
              let schedule = T.Level_schedule.theorem45 ~profile ~d ~n in
              ( float_of_int n,
                float_of_int
                  (T.Gate_count_matmul.matmul ~algo:strassen ~schedule ~entry_bits:1 ~n ())
                    .T.Gate_count.gates ))
            matmul_ns
        in
        let raw = T.Gate_model.fit_exponent points in
        let adjusted =
          T.Gate_model.fit_exponent
            (List.map (fun (n, g) -> (n, g /. polylog (int_of_float n))) points)
        in
        [
          Tb.Int d;
          Tb.Float raw;
          Tb.Float adjusted;
          Tb.Float (T.Gate_model.exponent profile ~d);
        ])
      [ 2; 3; 4 ]
  in
  Tb.print
    ~title:
      "Theorem 4.9 (matrix product): same fit over N in {32..256} via the matmul \
       counting DP"
    ~header:[ "d"; "raw slope"; "slope of gates/log^3 N"; "omega + c*gamma^d" ]
    ~rows;
  (* Extrapolated crossover vs the naive circuit in the paper's
     log N-bit regime: solve naive_fit(N) = ours_fit(N) from the fitted
     lines. *)
  let crossover d =
    let b n = float_of_int (log_bits (int_of_float n)) in
    let points =
      List.map
        (fun n ->
          let schedule = T.Level_schedule.theorem45 ~profile ~d ~n in
          ( float_of_int n,
            float_of_int
              (trace_gates ~entry_bits:(log_bits n) ~algo:strassen ~schedule ~n ()) ))
        ns
    in
    let naive_points =
      List.map
        (fun n ->
          ( float_of_int n,
            float_of_int (fst (T.Naive_circuits.trace_counts ~entry_bits:(log_bits n) ~n ())) ))
        ns
    in
    ignore b;
    let slope pts = T.Gate_model.fit_exponent pts in
    let intercept pts s =
      let n = float_of_int (List.length pts) in
      List.fold_left (fun acc (x, y) -> acc +. (log y -. (s *. log x))) 0. pts /. n
    in
    let s_ours = slope points and s_naive = slope naive_points in
    let i_ours = intercept points s_ours and i_naive = intercept naive_points s_naive in
    if s_ours >= s_naive then None
    else Some (exp ((i_ours -. i_naive) /. (s_naive -. s_ours)))
  in
  let rows =
    List.map
      (fun d ->
        match crossover d with
        | None -> [ Tb.Int d; Tb.Str "never (slope not below naive)" ]
        | Some n_star -> [ Tb.Int d; Tb.Str (Printf.sprintf "N ~ 2^%.1f" (log n_star /. log 2.)) ])
      [ 2; 4; 6; 8 ]
  in
  Tb.print
    ~title:
      "extrapolated crossover vs the naive depth-2 circuit (log N-bit entries, fitted \
       power laws from N in {256..4096})"
    ~header:[ "d"; "crossover" ]
    ~rows;
  Printf.printf
    "claim: gate count is O~(d * N^(omega + c*gamma^d)); the adjusted slopes must track \
     the prediction and decrease toward omega, and the crossover must be finite for d > \
     3 (it is astronomically large — constant-factor reality of the construction).\n"

(* ------------------------------------------------------------------ *)

let e5 () =
  Bench_util.header "E5: Theorem 4.4 log log N schedule: O~(N^omega) gates";
  let gamma = profile.F.Sparsity.overall.F.Sparsity.gamma in
  let rows =
    List.map
      (fun n ->
        let schedule = T.Level_schedule.theorem44 ~gamma ~t_dim:2 ~n in
        let gates = trace_gates ~algo:strassen ~schedule ~n () in
        let omega_pow = float_of_int n ** profile.F.Sparsity.omega in
        let lg = log (float_of_int n) /. log 2. in
        [
          Tb.Int n;
          Tb.Int (T.Level_schedule.steps schedule);
          Tb.Int gates;
          Tb.Float (float_of_int gates /. omega_pow);
          Tb.Float (float_of_int gates /. (omega_pow *. lg *. lg *. lg));
        ])
      [ 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]
  in
  Tb.print
    ~title:
      "trace circuit with rho = log_T N: t = O(log log N) levels, gates/N^omega grows \
       only polylogarithmically (log^3 N from the product layer)"
    ~header:[ "N"; "levels t"; "gates"; "gates/N^w"; "gates/(N^w log^3 N)" ]
    ~rows

(* ------------------------------------------------------------------ *)

let e6 () =
  Bench_util.header
    "E6: level-selection ablation (Sec. 2.2: geometric beats uniform and direct) + \
     sparsity ablation";
  let n = 64 in
  let l = T.Level_schedule.height ~t_dim:2 ~n in
  let schedules =
    [
      ("direct [0,L] (Sec. 4.2 strawman)", T.Level_schedule.direct ~l);
      ("uniform-2 (every k-th level)", T.Level_schedule.uniform ~steps:2 ~l);
      ("uniform-3", T.Level_schedule.uniform ~steps:3 ~l);
      ("thm4.5 d=2 (geometric)", T.Level_schedule.theorem45 ~profile ~d:2 ~n);
      ("thm4.5 d=3 (geometric)", T.Level_schedule.theorem45 ~profile ~d:3 ~n);
      ("thm4.4 (rho = L)", T.Level_schedule.theorem44 ~gamma:profile.F.Sparsity.overall.F.Sparsity.gamma ~t_dim:2 ~n);
      ("full (recursive shape)", T.Level_schedule.full ~l);
    ]
  in
  let rows =
    List.map
      (fun (name, schedule) ->
        let gates = trace_gates ~algo:strassen ~schedule ~n () in
        [
          Tb.Str name;
          Tb.Str (Format.asprintf "%a" T.Level_schedule.pp schedule);
          Tb.Int (T.Gate_model.trace_depth schedule);
          Tb.Int gates;
        ])
      schedules
  in
  Tb.print ~title:(Printf.sprintf "schedule comparison, trace circuit at N=%d" n)
    ~header:[ "schedule"; "levels"; "depth"; "gates" ]
    ~rows;
  (* Theorem 4.1 route: staged adders, no level selection.  Counted via
     count-only builds (no DP covers staged adders); N=32 keeps the
     deliberately-bad circuits buildable. *)
  let n32 = 32 in
  let staged_rows =
    List.concat_map
      (fun d ->
        let built =
          T.Trace_circuit.build_staged ~mode:Builder.Count_only ~algo:strassen
            ~stages:d ~entry_bits:1 ~tau:1 ~n:n32 ()
        in
        let st = T.Trace_circuit.stats built in
        let schedule = T.Level_schedule.theorem45 ~profile ~d ~n:n32 in
        [
          [
            Tb.Str (Printf.sprintf "staged d=%d (Thm 4.1)" d);
            Tb.Int st.Stats.depth;
            Tb.Int st.Stats.gates;
          ];
          [
            Tb.Str (Printf.sprintf "thm4.5 d=%d (Thm 4.5)" d);
            Tb.Int (T.Gate_model.trace_depth schedule);
            Tb.Int (trace_gates ~algo:strassen ~schedule ~n:n32 ());
          ];
        ])
      [ 2; 3 ]
  in
  Tb.print
    ~title:
      (Printf.sprintf
         "Theorem 4.1 (staged adders) vs Theorem 4.5 (level selection) at N=%d" n32)
    ~header:[ "construction"; "depth"; "gates" ]
    ~rows:staged_rows;
  (* Sparsity ablation: same rank, different sparsity. *)
  let rows =
    List.map
      (fun (algo, (p : F.Sparsity.profile)) ->
        let n = Tcmm_util.Checked.pow algo.F.Bilinear.t_dim
            (if algo.F.Bilinear.t_dim = 2 then 6 else if algo.F.Bilinear.t_dim = 3 then 4 else 3)
        in
        let schedule = T.Level_schedule.theorem45 ~profile:p ~d:2 ~n in
        let gates = trace_gates ~algo ~schedule ~n () in
        [
          Tb.Str algo.F.Bilinear.name;
          Tb.Int n;
          Tb.Int p.F.Sparsity.sparsity;
          Tb.Float p.F.Sparsity.overall.F.Sparsity.gamma;
          Tb.Float (T.Gate_model.exponent p ~d:2);
          Tb.Int gates;
        ])
      (analyzable_algos ())
  in
  Tb.print
    ~title:
      "sparsity ablation at d=2 (Strassen vs Winograd: same rank 7, sparsity 12 vs 14 \
       -> Strassen wins; the bound depends on sparsity, not only rank)"
    ~header:[ "algorithm"; "N"; "s"; "gamma"; "exponent"; "gates" ]
    ~rows

(* ------------------------------------------------------------------ *)

let e7 () =
  Bench_util.header "E7: correctness battery (simulated circuits vs integer references)";
  let rng = Tcmm_util.Prng.create ~seed:20260705 in
  let results = ref [] in
  let record name ok = results := [ Tb.Str name; Tb.Str (if ok then "pass" else "FAIL") ] :: !results in
  (* Matrix products. *)
  List.iter
    (fun (algo, n, schedule, bits, signed) ->
      let lo = if signed then -((1 lsl bits) - 1) else 0 in
      let a = F.Matrix.random rng ~rows:n ~cols:n ~lo ~hi:((1 lsl bits) - 1) in
      let b = F.Matrix.random rng ~rows:n ~cols:n ~lo ~hi:((1 lsl bits) - 1) in
      let built =
        T.Matmul_circuit.build ~algo ~schedule ~signed_inputs:signed ~entry_bits:bits ~n ()
      in
      let ok = F.Matrix.equal (T.Matmul_circuit.run built ~a ~b) (F.Matrix.mul a b) in
      record
        (Printf.sprintf "matmul %s N=%d %s b=%d%s" algo.F.Bilinear.name n
           (Format.asprintf "%a" T.Level_schedule.pp schedule)
           bits (if signed then " signed" else ""))
        ok)
    [
      (strassen, 4, T.Level_schedule.full ~l:2, 3, true);
      (strassen, 4, T.Level_schedule.direct ~l:2, 2, false);
      (F.Instances.winograd, 4, T.Level_schedule.full ~l:2, 2, true);
      (F.Instances.naive ~t_dim:2, 4, T.Level_schedule.full ~l:2, 2, false);
      (F.Instances.naive ~t_dim:3, 9, T.Level_schedule.full ~l:2, 1, false);
      (F.Instances.strassen_squared, 4, T.Level_schedule.full ~l:1, 2, true);
      (strassen, 8, T.Level_schedule.uniform ~steps:2 ~l:3, 1, false);
      (strassen, 8, T.Level_schedule.theorem45 ~profile ~d:2 ~n:8, 2, true);
    ];
  (* Traces. *)
  List.iter
    (fun (algo, n, schedule, bits, signed) ->
      let lo = if signed then -((1 lsl bits) - 1) else 0 in
      let m = F.Matrix.random rng ~rows:n ~cols:n ~lo ~hi:((1 lsl bits) - 1) in
      let expect = T.Trace_circuit.reference m in
      let built =
        T.Trace_circuit.build ~algo ~schedule ~signed_inputs:signed ~entry_bits:bits
          ~tau:expect ~n ()
      in
      let ok =
        T.Trace_circuit.trace_value built m = expect && T.Trace_circuit.run built m
      in
      record
        (Printf.sprintf "trace %s N=%d %s b=%d%s" algo.F.Bilinear.name n
           (Format.asprintf "%a" T.Level_schedule.pp schedule)
           bits (if signed then " signed" else ""))
        ok)
    [
      (strassen, 4, T.Level_schedule.full ~l:2, 2, false);
      (strassen, 8, T.Level_schedule.theorem45 ~profile ~d:2 ~n:8, 1, false);
      (strassen, 16, T.Level_schedule.theorem45 ~profile ~d:2 ~n:16, 1, false);
      (F.Instances.winograd, 4, T.Level_schedule.direct ~l:2, 2, true);
    ];
  (* Triangles via both circuits. *)
  let g = G.Generate.erdos_renyi rng ~n:8 ~p:0.5 in
  let tri = G.Triangles.count g in
  let adj = G.Graph.adjacency g in
  let naive_yes = T.Naive_circuits.triangle_threshold ~n:8 ~tau:tri () in
  let naive_no = T.Naive_circuits.triangle_threshold ~n:8 ~tau:(tri + 1) () in
  record "naive triangle circuit boundary"
    (T.Naive_circuits.triangle_run naive_yes adj
    && not (T.Naive_circuits.triangle_run naive_no adj));
  let sched8 = T.Level_schedule.theorem45 ~profile ~d:2 ~n:8 in
  let tr_yes = T.Trace_circuit.build ~algo:strassen ~schedule:sched8 ~entry_bits:1 ~tau:(6 * tri) ~n:8 () in
  record "trace circuit counts triangles" (T.Trace_circuit.run tr_yes adj);
  (* Convolution through the circuit. *)
  let img = C.Image.random rng ~channels:1 ~height:4 ~width:4 ~lo:(-3) ~hi:3 in
  let kernels =
    Array.init 2 (fun _ -> C.Image.random rng ~channels:1 ~height:2 ~width:2 ~lo:(-2) ~hi:2)
  in
  let spec = { C.Im2col.q = 2; stride = 2 } in
  let nconv = C.Conv.circuit_size spec img kernels ~t_dim:2 in
  let a = C.Im2col.embed (C.Im2col.patch_matrix spec img) ~n:nconv in
  let b = C.Im2col.embed (C.Im2col.kernel_matrix kernels) ~n:nconv in
  let built =
    T.Matmul_circuit.build ~algo:strassen
      ~schedule:(T.Level_schedule.full ~l:(T.Level_schedule.height ~t_dim:2 ~n:nconv))
      ~signed_inputs:true ~entry_bits:3 ~n:nconv ()
  in
  let product = T.Matmul_circuit.run built ~a ~b in
  let direct = C.Conv.direct spec img kernels in
  let _, ow = C.Im2col.output_dims spec img in
  let conv_ok = ref true in
  Array.iteri
    (fun k plane ->
      Array.iteri
        (fun py row ->
          Array.iteri
            (fun px v -> if F.Matrix.get product ((py * ow) + px) k <> v then conv_ok := false)
            row)
        plane)
    direct;
  record "conv layer through matmul circuit" !conv_ok;
  let rows = List.rev !results in
  let failures =
    List.length (List.filter (function [ _; Tb.Str "FAIL" ] -> true | _ -> false) rows)
  in
  Tb.print ~title:(Printf.sprintf "simulation vs reference (%d failures)" failures)
    ~header:[ "case"; "result" ] ~rows

(* ------------------------------------------------------------------ *)

let e11 () =
  Bench_util.header
    "E11: shared-top-layer ablation (Lemma 3.2's 'improved in practice' remark)";
  let rows =
    List.map
      (fun n ->
        let b = log_bits n in
        let schedule = T.Level_schedule.theorem45 ~profile ~d:3 ~n in
        let base = T.Gate_count.trace ~algo:strassen ~schedule ~entry_bits:b ~n () in
        let opt =
          T.Gate_count.trace ~algo:strassen ~schedule ~entry_bits:b ~share_top:true ~n ()
        in
        [
          Tb.Int n;
          Tb.Int base.T.Gate_count.gates;
          Tb.Int opt.T.Gate_count.gates;
          Tb.Ratio (float_of_int base.T.Gate_count.gates /. float_of_int opt.T.Gate_count.gates);
          Tb.Int base.T.Gate_count.edges;
          Tb.Int opt.T.Gate_count.edges;
          Tb.Ratio (float_of_int base.T.Gate_count.edges /. float_of_int opt.T.Gate_count.edges);
        ])
      [ 16; 64; 256; 1024 ]
  in
  Tb.print
    ~title:
      "trace circuit, d=3, log N-bit entries: baseline Lemma 3.2 vs shared top layer \
       (same function, checked by tests)"
    ~header:[ "N"; "gates"; "gates(shared)"; "ratio"; "edges"; "edges(shared)"; "ratio" ]
    ~rows;
  Printf.printf
    "finding: sharing helps mostly the wire count (the top bits' first layers are the \
     widest gates); the gate count is dominated by the per-bit truncated instances and \
     the product layer, so the paper's remark buys percents, not factors.\n"

let e12 () =
  Bench_util.header
    "E12: bounded fan-in via tiling (Sec. 5: 'break the matrix multiplication into \
     independent pieces')";
  let entry_bits = 4 in
  let rows =
    List.map
      (fun (n, block_l) ->
        let schedule = T.Level_schedule.full ~l:block_l in
        let tiled =
          T.Tiled_matmul.build ~mode:Builder.Count_only ~algo:strassen ~schedule
            ~signed_inputs:true ~entry_bits ~rows:n ~inner:n ~cols:n ()
        in
        let st = T.Tiled_matmul.stats tiled in
        [
          Tb.Int n;
          Tb.Int (1 lsl block_l);
          Tb.Int st.Stats.gates;
          Tb.Int st.Stats.edges;
          Tb.Int st.Stats.depth;
          Tb.Int st.Stats.max_fan_in;
        ])
      [ (16, 4); (16, 3); (16, 2); (16, 1); (32, 3); (32, 2) ]
  in
  Tb.print
    ~title:
      "N x N product, 4-bit signed entries: smaller tiles trade depth (+2 for the \
       tile-sum layer; deeper tile recursion) for bounded fan-in (block 2^l = whole \
       matrix means the monolithic circuit)"
    ~header:[ "N"; "block"; "gates"; "edges"; "depth"; "max fan-in" ]
    ~rows;
  (* Rectangular conv shapes: tiled vs square embedding. *)
  let rows =
    List.map
      (fun (p, q, k, name) ->
        let block_l = 2 in
        let block = 1 lsl block_l in
        let pr = T.Tiled_matmul.round_up p ~block
        and qr = T.Tiled_matmul.round_up q ~block
        and kr = T.Tiled_matmul.round_up k ~block in
        let tiled =
          T.Tiled_matmul.build ~mode:Builder.Count_only ~algo:strassen
            ~schedule:(T.Level_schedule.full ~l:block_l) ~signed_inputs:true
            ~entry_bits ~rows:pr ~inner:qr ~cols:kr ()
        in
        let nsq =
          let need = max p (max q k) in
          let rec grow m = if m >= need then m else grow (2 * m) in
          grow 2
        in
        (* Exact square-circuit count via the matmul DP (a count-only
           build at N=64 would need gigabytes for no extra precision). *)
        let square =
          T.Gate_count_matmul.matmul ~algo:strassen
            ~schedule:(T.Level_schedule.theorem45 ~profile ~d:2 ~n:nsq)
            ~entry_bits ~signed_inputs:true ~n:nsq ()
        in
        let st = T.Tiled_matmul.stats tiled in
        [
          Tb.Str name;
          Tb.Str (Printf.sprintf "%dx%dx%d" p q k);
          Tb.Int nsq;
          Tb.Int square.T.Gate_count.gates;
          Tb.Int st.Stats.gates;
          Tb.Ratio
            (float_of_int square.T.Gate_count.gates /. float_of_int st.Stats.gates);
        ])
      [
        (36, 27, 4, "8x8x3 img, 4 3x3 kernels");
        (16, 12, 8, "8x8x3 img, 8 2x2 kernels, stride 2");
        (49, 27, 4, "16x16x3 img, 4 3x3 kernels, stride 2");
      ]
  in
  Tb.print
    ~title:
      "conv layers (P x Q by Q x K): square embedding vs block-4 tiling — rectangular \
       shapes stop paying for the empty padding"
    ~header:[ "layer"; "PxQxK"; "square N"; "square gates"; "tiled gates"; "ratio" ]
    ~rows

let e13 () =
  Bench_util.header
    "E13: spiking semantics — constant depth IS constant settling time";
  let rng = Tcmm_util.Prng.create ~seed:31 in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun d ->
            let schedule = T.Level_schedule.theorem45 ~profile ~d ~n in
            let built =
              T.Trace_circuit.build ~algo:strassen ~schedule ~entry_bits:1
                ~tau:(3 * n) ~n ()
            in
            match built.T.Trace_circuit.circuit with
            | None -> []
            | Some c ->
                let g = G.Generate.erdos_renyi rng ~n ~p:0.4 in
                let input =
                  T.Trace_circuit.encode_input built (G.Graph.adjacency g)
                in
                let ticks, out = Tcmm_threshold.Spiking.settle c input in
                let reference = Tcmm_threshold.Simulator.read_outputs c input in
                [
                  Tb.Int n;
                  Tb.Int d;
                  Tb.Int (T.Trace_circuit.stats built).Stats.depth;
                  Tb.Int ticks;
                  Tb.Str (if out = reference then "agrees" else "DISAGREES");
                ])
          [ 1; 2; 3 ])
      [ 8; 16 ]
  in
  let rows = List.filter (fun r -> r <> []) rows in
  Tb.print
    ~title:
      "synchronous per-tick neuron updates (TrueNorth-style): ticks to fixed point vs \
       circuit depth (trace circuits on ER(n,0.4))"
    ~header:[ "N"; "d"; "depth"; "settling ticks"; "vs DAG semantics" ]
    ~rows

let e15 () =
  Bench_util.header
    "E15: sparsity optimization over the de Groote orbit (is Strassen's presentation \
     circuit-optimal?)";
  let rows =
    List.map
      (fun algo ->
        let start = (F.Sparsity.analyze algo).F.Sparsity.sparsity in
        let r = F.Orbit.search algo in
        let p = F.Sparsity.analyze r.F.Orbit.algorithm in
        [
          Tb.Str algo.F.Bilinear.name;
          Tb.Int start;
          Tb.Int r.F.Orbit.triples_tried;
          Tb.Int r.F.Orbit.sparsity;
          Tb.Float p.F.Sparsity.overall.F.Sparsity.gamma;
          Tb.Str (if r.F.Orbit.better_than_start then "improved" else "already optimal");
        ])
      [ strassen; F.Instances.winograd ]
  in
  Tb.print
    ~title:
      "exhaustive sandwiching by unimodular {-1,0,1} triples (every candidate \
       re-verified against Brent's equations)"
    ~header:[ "start algorithm"; "s"; "triples"; "best s in orbit"; "best gamma"; "verdict" ]
    ~rows;
  Printf.printf
    "finding: Strassen's published form already attains the minimum sparsity (12) over \
     its 64000-triple orbit, so the paper's constants cannot be improved by a change of \
     basis with small integer entries; Winograd's 15-addition variant (s=14) transforms \
     back to s=12 — its worse circuit constants are an artifact of presentation.\n"

let e14 () =
  Bench_util.header
    "E14: on-chip fixed-weight inference (Sec. 1/5: keep deep-learning linear algebra \
     on the neuromorphic chip)";
  let rng = Tcmm_util.Prng.create ~seed:77 in
  let rows =
    List.map
      (fun (size, k1n, k2n, bits) ->
        let b = Builder.create ~mode:Builder.Count_only () in
        let fm, _ =
          C.Inference.input_image b ~channels:1 ~height:size ~width:size
            ~entry_bits:bits ~signed:false
        in
        let k1 =
          Array.init k1n (fun _ ->
              C.Image.random rng ~channels:1 ~height:3 ~width:3 ~lo:(-2) ~hi:2)
        in
        let layer1 =
          C.Inference.relu b
            (C.Inference.conv_fixed b ~spec:{ C.Im2col.q = 3; stride = 1 } ~kernels:k1 fm)
        in
        let k2 =
          Array.init k2n (fun _ ->
              C.Image.random rng ~channels:k1n ~height:2 ~width:2 ~lo:(-1) ~hi:1)
        in
        let layer2 =
          C.Inference.conv_fixed b ~spec:{ C.Im2col.q = 2; stride = 2 } ~kernels:k2 layer1
        in
        ignore layer2;
        let st = Builder.stats b in
        [
          Tb.Str (Printf.sprintf "%dx%d img (%d-bit), conv3x3 x%d -> relu -> conv2x2/2 x%d" size size bits k1n k2n);
          Tb.Int st.Stats.gates;
          Tb.Int st.Stats.edges;
          Tb.Int st.Stats.depth;
          Tb.Int st.Stats.max_fan_in;
        ])
      [ (8, 4, 2, 3); (16, 8, 4, 4); (32, 8, 4, 8); (32, 16, 8, 8) ]
  in
  Tb.print
    ~title:
      "two-layer fixed-weight networks compiled to one circuit (constant weights need \
       no product gates: conv = depth-2 weighted sum, relu = depth 3)"
    ~header:[ "network"; "gates"; "edges"; "depth"; "max fan-in" ]
    ~rows;
  Printf.printf
    "contrast with E10's conv-as-matmul tables: when one operand is constant, the \
     circuit shrinks by orders of magnitude — Theorem 4.9 is for the data-dependent \
     (training/GEMM) case.\n"

let e9 () =
  Bench_util.header "E9: firing-count energy (Uchizawa et al. model; paper Sec. 6 open problem)";
  let rng = Tcmm_util.Prng.create ~seed:99 in
  let rows =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun d ->
            if T.Level_schedule.height ~t_dim:2 ~n < 1 then None
            else begin
              let schedule = T.Level_schedule.theorem45 ~profile ~d ~n in
              let built =
                T.Trace_circuit.build ~algo:strassen ~schedule ~entry_bits:1
                  ~tau:(n * n) ~n ()
              in
              match built.T.Trace_circuit.circuit with
              | None -> None
              | Some c ->
                  let inputs =
                    List.init 20 (fun _ ->
                        let g = G.Generate.erdos_renyi rng ~n ~p:0.4 in
                        T.Trace_circuit.encode_input built (G.Graph.adjacency g))
                  in
                  let e = Tcmm_threshold.Energy.measure c inputs in
                  Some
                    [
                      Tb.Int n;
                      Tb.Int d;
                      Tb.Int e.Tcmm_threshold.Energy.gates;
                      Tb.Float e.Tcmm_threshold.Energy.mean_firings;
                      Tb.Float (Tcmm_threshold.Energy.firing_fraction e);
                    ]
            end)
          [ 1; 2; 3 ])
      [ 8; 16 ]
  in
  Tb.print
    ~title:"mean firing fraction of trace circuits on ER(n, 0.4) adjacency inputs (20 samples)"
    ~header:[ "N"; "d"; "gates"; "mean firings"; "firing fraction" ]
    ~rows

(* ------------------------------------------------------------------ *)

(* E20: construction wall-time.  Three build paths for the same circuit:
     legacy   — gate-by-gate builder, then the per-gate
                Packed.of_circuit walk;
     stamped  — hash-consed block templates stamped by offset
                arithmetic, still materializing a Circuit.t;
     direct   — stamped arena lowered straight to the packed CSR form
                (Packed.of_arena), no Circuit.t ever built.
   Every leg is checked gate-for-gate against the counting DP, and the
   direct build is evaluated end-to-end against integer references (the
   N=32 certificate the acceptance criteria ask for).  Results land in
   BENCH_build.json. *)

type e20_built = {
  eb_builder : Builder.t;
  eb_circuit : Tcmm_threshold.Circuit.t option;
  eb_eval : unit -> bool;  (* end-to-end run vs the integer reference *)
}

let e20 ?(ns = [ 8; 16; 32 ]) () =
  Bench_util.header
    "E20: construction wall-time (legacy builder vs template stamping vs \
     direct-to-CSR)";
  let module Th = Tcmm_threshold in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rng = Tcmm_util.Prng.create ~seed:42 in
  let check label n ((expect_g, expect_e) : int * int) (st : Stats.t) =
    if st.Stats.gates <> expect_g || st.Stats.edges <> expect_e then
      failwith
        (Printf.sprintf
           "e20 %s N=%d: %d gates / %d edges diverge from the expected %d / %d"
           label n st.Stats.gates st.Stats.edges expect_g expect_e)
  in
  let rows = ref [] in
  let run_family ~family ~expect ~build n =
    let schedule = T.Level_schedule.theorem45 ~profile ~d:2 ~n in
    let expect = expect ~schedule ~n in
    (* The two Materialize legs are skipped at N=32: [Circuit.make] and
       [Packed.of_circuit] are O(logical edges) — the very cost the
       direct path exists to avoid (tens of minutes of wall clock
       there). *)
    let heavy = n >= 32 in
    let legacy =
      if heavy then None
      else begin
        let b, t_build =
          time (fun () ->
              build ~mode:Builder.Materialize ~templates:false ~schedule ~n)
        in
        check (family ^ " legacy") n expect (Builder.stats b.eb_builder);
        let _p, t_pack =
          time (fun () -> Th.Packed.of_circuit (Option.get b.eb_circuit))
        in
        Some (Builder.stats b.eb_builder, t_build, t_pack)
      end
    in
    (* Stamped leg: template cache on, still materializing a Circuit.t. *)
    let stamped =
      if heavy then None
      else begin
        let st_b, t_stamp_build =
          time (fun () ->
              build ~mode:Builder.Materialize ~templates:true ~schedule ~n)
        in
        check (family ^ " stamped") n expect (Builder.stats st_b.eb_builder);
        (match legacy with
        | Some (legacy_stats, _, _)
          when Builder.stats st_b.eb_builder <> legacy_stats ->
            failwith
              (Printf.sprintf "e20 %s N=%d: stamped stats diverge from legacy"
                 family n)
        | _ -> ());
        let _p, t_stamp_pack =
          time (fun () -> Th.Packed.of_circuit (Option.get st_b.eb_circuit))
        in
        Some (t_stamp_build, t_stamp_pack)
      end
    in
    (* Direct leg: stamped arena lowered straight to CSR, at 1/2/4
       evaluation domains for the parallel lowering pass. *)
    let d_b, t_direct_build =
      time (fun () -> build ~mode:Builder.Direct ~templates:true ~schedule ~n)
    in
    check (family ^ " direct") n expect (Builder.stats d_b.eb_builder);
    let arena = Builder.arena d_b.eb_builder in
    let lower_times =
      List.map
        (fun domains ->
          let t =
            if domains = 1 then snd (time (fun () -> Th.Packed.of_arena arena))
            else
              Th.Packed.Pool.with_pool ~domains (fun pool ->
                  snd (time (fun () -> Th.Packed.of_arena ~pool arena)))
          in
          Gc.compact ();
          (domains, t))
        [ 1; 2; 4 ]
    in
    let t_direct_lower = List.assoc 1 lower_times in
    (* Certificate: the direct-lowered circuit evaluates correctly
       against the plain integer reference. *)
    let eval_ok = d_b.eb_eval () in
    if not eval_ok then
      failwith (Printf.sprintf "e20 %s N=%d: direct evaluation DISAGREES" family n);
    let ts = Builder.template_stats d_b.eb_builder in
    let stats = Builder.stats d_b.eb_builder in
    let direct_total = t_direct_build +. t_direct_lower in
    let legacy_total =
      Option.map (fun (_, b, p) -> b +. p) legacy
    in
    let sec t = Tb.Str (Printf.sprintf "%.3f s" t) in
    let leg_row label t_build t_pack extra =
      rows :=
        ([ Tb.Str (Printf.sprintf "%s N=%d" family n); Tb.Str label ]
        @ [ sec t_build; sec t_pack; sec (t_build +. t_pack) ]
        @ [ extra ])
        :: !rows
    in
    (match legacy with
    | Some (_, b, p) -> leg_row "legacy" b p (Tb.Str "1.0x")
    | None -> ());
    let speedup t =
      match legacy_total with
      | Some lt -> Tb.Str (Printf.sprintf "%.1fx" (lt /. t))
      | None -> Tb.Str "-"
    in
    (match stamped with
    | Some (b, p) -> leg_row "stamped" b p (speedup (b +. p))
    | None -> ());
    leg_row "direct" t_direct_build t_direct_lower (speedup direct_total);
    Bench_util.record ~experiment:"e20"
      ([
         ("circuit", Bench_util.Str family);
         ("n", Bench_util.Int n);
         ("gates", Bench_util.Int stats.Stats.gates);
         ("edges", Bench_util.Int stats.Stats.edges);
         ("legacy_skipped", Bench_util.Bool (legacy = None));
       ]
      @ (match stamped with
        | None -> []
        | Some (b, p) ->
            [
              ("stamped_build_seconds", Bench_util.Float b);
              ("stamped_pack_seconds", Bench_util.Float p);
            ])
      @ [
         ("direct_build_seconds", Bench_util.Float t_direct_build);
         ("direct_total_seconds", Bench_util.Float direct_total);
         ("templates", Bench_util.Int ts.Builder.templates);
         ("template_instances", Bench_util.Int ts.Builder.instances);
         ("stamped_gates", Bench_util.Int ts.Builder.stamped_gates);
         ("eval_certificate_ok", Bench_util.Bool eval_ok);
       ]
      @ List.map
          (fun (d, t) ->
            (Printf.sprintf "direct_lower_domains%d_seconds" d, Bench_util.Float t))
          lower_times
      @ (match legacy with
        | None -> []
        | Some (_, b, p) ->
            [
              ("legacy_build_seconds", Bench_util.Float b);
              ("legacy_pack_seconds", Bench_util.Float p);
              ("legacy_total_seconds", Bench_util.Float (b +. p));
              ( "direct_speedup_vs_legacy",
                Bench_util.Float ((b +. p) /. direct_total) );
            ]));
    Gc.compact ()
  in
  let matmul_family n =
    run_family ~family:"matmul" n
      ~expect:(fun ~schedule ~n ->
        let c =
          T.Gate_count_matmul.matmul ~algo:strassen ~schedule ~entry_bits:1 ~n ()
        in
        (c.T.Gate_count.gates, c.T.Gate_count.edges))
      ~build:(fun ~mode ~templates ~schedule ~n ->
        let built =
          T.Matmul_circuit.build ~mode ~templates ~algo:strassen ~schedule
            ~entry_bits:1 ~n ()
        in
        {
          eb_builder = built.T.Matmul_circuit.builder;
          eb_circuit = built.T.Matmul_circuit.circuit;
          eb_eval =
            (fun () ->
              let a = F.Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 in
              let b = F.Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 in
              F.Matrix.equal
                (T.Matmul_circuit.run built ~a ~b)
                (F.Matrix.mul a b));
        })
  in
  let trace_family n =
    run_family ~family:"trace" n
      ~expect:(fun ~schedule ~n ->
        let c = T.Gate_count.trace ~algo:strassen ~schedule ~entry_bits:1 ~n () in
        (c.T.Gate_count.gates, c.T.Gate_count.edges))
      ~build:(fun ~mode ~templates ~schedule ~n ->
        let built =
          T.Trace_circuit.build ~mode ~templates ~algo:strassen ~schedule
            ~entry_bits:1 ~tau:(n * n) ~n ()
        in
        {
          eb_builder = built.T.Trace_circuit.builder;
          eb_circuit = built.T.Trace_circuit.circuit;
          eb_eval =
            (fun () ->
              let m = F.Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 in
              T.Trace_circuit.trace_value built m
              = T.Trace_circuit.reference m);
        })
  in
  List.iter (fun n -> matmul_family n; trace_family n) ns;
  Tb.print
    ~title:
      "build + pack wall-clock (d=2 schedules, binary entries; every leg checked \
       gate-for-gate against the counting DP, direct legs evaluated end-to-end)"
    ~header:[ "circuit"; "path"; "build"; "pack/lower"; "total"; "vs legacy" ]
    ~rows:(List.rev !rows)

(* ------------------------------------------------------------------ *)

let e10 () =
  Bench_util.header "E10: applications (Sec. 5): triangle queries and a conv layer";
  let rng = Tcmm_util.Prng.create ~seed:123 in
  let n = 16 in
  let schedule = T.Level_schedule.theorem45 ~profile ~d:2 ~n in
  let rows =
    List.map
      (fun p ->
        let g = G.Generate.erdos_renyi rng ~n ~p in
        let exact = G.Triangles.count g in
        let expected = G.Generate.expected_triangles_er ~n ~p in
        let tau = max 1 (int_of_float expected) in
        let built =
          T.Trace_circuit.build ~algo:strassen ~schedule ~entry_bits:1 ~tau:(6 * tau) ~n ()
        in
        let fires = T.Trace_circuit.run built (G.Graph.adjacency g) in
        [
          Tb.Float p;
          Tb.Int (G.Graph.num_edges g);
          Tb.Int exact;
          Tb.Float expected;
          Tb.Int tau;
          Tb.Str (string_of_bool fires);
          Tb.Str (if fires = (exact >= tau) then "agrees" else "DISAGREES");
        ])
      [ 0.15; 0.3; 0.45; 0.6 ]
  in
  Tb.print
    ~title:
      (Printf.sprintf
         "ER(%d, p) triangle threshold queries, tau = E[triangles] (constant-depth circuit \
          vs exact count)"
         n)
    ~header:[ "p"; "edges"; "triangles"; "E[tri]"; "tau"; "circuit >= tau"; "check" ]
    ~rows;
  (* Conv layer sizing table: the paper's P x Q x K framing. *)
  let rows =
    List.map
      (fun (size, channels, q, stride, k) ->
        let img = C.Image.random rng ~channels ~height:size ~width:size ~lo:0 ~hi:7 in
        let kernels =
          Array.init k (fun _ ->
              C.Image.random rng ~channels ~height:q ~width:q ~lo:(-3) ~hi:3)
        in
        let spec = { C.Im2col.q; stride } in
        let pm = C.Im2col.patch_matrix spec img in
        let nmat = C.Conv.circuit_size spec img kernels ~t_dim:2 in
        let schedule = T.Level_schedule.theorem45 ~profile ~d:2 ~n:nmat in
        (* Exact counts via the matmul DP: no multi-gigabyte build. *)
        let counts =
          T.Gate_count_matmul.matmul ~algo:strassen ~schedule ~entry_bits:4
            ~signed_inputs:true ~n:nmat ()
        in
        [
          Tb.Str
            (Printf.sprintf "%dx%dx%d img, %d %dx%d kernels, stride %d" size size
               channels k q q stride);
          Tb.Int (F.Matrix.rows pm);
          Tb.Int (F.Matrix.cols pm);
          Tb.Int k;
          Tb.Int nmat;
          Tb.Int counts.T.Gate_count.gates;
          Tb.Int (T.Gate_model.matmul_depth schedule);
        ])
      [ (8, 3, 2, 2, 8); (8, 1, 3, 2, 4); (10, 3, 3, 2, 4) ]
  in
  Tb.print ~title:"conv layers lowered to circuits (exact counts, d=2 schedules)"
    ~header:[ "layer"; "P"; "Q"; "K"; "N"; "gates"; "depth" ]
    ~rows
