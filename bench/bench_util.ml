(* Shared helpers for the benchmark harness. *)

module Tb = Tcmm_util.Tablefmt

(* Wall-clock measurement through bechamel: returns (name, ns/run) for
   each test, via OLS against the run counter. *)
let measure_ns tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"bench" tests) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      (name, estimate) :: acc)
    results []
  |> List.sort compare

let ns_cell ns =
  if Float.is_nan ns then Tb.Str "n/a"
  else if ns >= 1e9 then Tb.Str (Printf.sprintf "%.2f s" (ns /. 1e9))
  else if ns >= 1e6 then Tb.Str (Printf.sprintf "%.2f ms" (ns /. 1e6))
  else if ns >= 1e3 then Tb.Str (Printf.sprintf "%.2f us" (ns /. 1e3))
  else Tb.Str (Printf.sprintf "%.0f ns" ns)

let header title =
  Printf.printf "\n######## %s ########\n\n%!" title

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_simulator.json)                    *)
(* ------------------------------------------------------------------ *)

(* Benches record their headline numbers here so the perf trajectory is
   tracked across PRs in version control, not only in stdout tables. *)

type json = Int of int | Float of float | Str of string | Bool of bool

let json_records : (string * (string * json) list) list ref = ref []

let record ~experiment fields =
  json_records := (experiment, fields) :: !json_records

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f then Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape s))
  | Bool b -> Buffer.add_string buf (string_of_bool b)

(* Writes the records collected so far whose experiment name satisfies
   [only] (no-op when none match) — the server bench lands in its own
   BENCH_server.json, everything else in BENCH_simulator.json. *)
let write_json ?(only = fun _ -> true) path =
  match List.rev (List.filter (fun (e, _) -> only e) !json_records) with
  | [] -> ()
  | records ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf "{\n  \"benches\": [\n";
      List.iteri
        (fun i (experiment, fields) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf
            (Printf.sprintf "    { \"experiment\": \"%s\"" (json_escape experiment));
          List.iter
            (fun (k, v) ->
              Buffer.add_string buf (Printf.sprintf ", \"%s\": " (json_escape k));
              json_value buf v)
            fields;
          Buffer.add_string buf " }")
        records;
      Buffer.add_string buf "\n  ]\n}\n";
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "\nwrote %s (%d records)\n%!" path (List.length records)
