(* Benchmark harness: regenerates every experiment table (see
   EXPERIMENTS.md), runs the bechamel wall-clock benches (E8) and the
   evaluation-engine comparison (E17), and leaves the headline numbers
   in BENCH_simulator.json.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e2 e4   # selected tables only *)

module F = Tcmm_fastmm
module T = Tcmm
module Tb = Tcmm_util.Tablefmt

(* The flagship matmul/trace N=16 d=2 circuits are used by both E8
   (simulate leg) and E17 (engine comparison); build each once and share
   the [built] value across legs instead of paying the construction twice. *)
let profile = F.Sparsity.analyze F.Instances.strassen
let sched16 = T.Level_schedule.theorem45 ~profile ~d:2 ~n:16

let shared_mm16 =
  lazy
    (T.Matmul_circuit.build ~algo:F.Instances.strassen ~schedule:sched16
       ~entry_bits:1 ~n:16 ())

let shared_tr16 =
  lazy
    (T.Trace_circuit.build ~algo:F.Instances.strassen ~schedule:sched16
       ~entry_bits:1 ~tau:100 ~n:16 ())

(* E8: wall-clock timings via bechamel. *)
let e8 () =
  Bench_util.header "E8: wall-clock benches (bechamel, ns/run via OLS)";
  let rng = Tcmm_util.Prng.create ~seed:7 in
  let n = 128 in
  let a = F.Matrix.random rng ~rows:n ~cols:n ~lo:(-8) ~hi:8 in
  let b = F.Matrix.random rng ~rows:n ~cols:n ~lo:(-8) ~hi:8 in
  let built = Lazy.force shared_mm16 in
  let a16 = F.Matrix.random rng ~rows:16 ~cols:16 ~lo:0 ~hi:1 in
  let b16 = F.Matrix.random rng ~rows:16 ~cols:16 ~lo:0 ~hi:1 in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"cpu naive matmul N=128" (Staged.stage (fun () -> F.Matrix.mul a b));
      Test.make ~name:"cpu strassen N=128 (cutoff 32)"
        (Staged.stage (fun () -> F.Bilinear.multiply ~cutoff:32 F.Instances.strassen a b));
      Test.make ~name:"cpu strassen N=128 (cutoff 8)"
        (Staged.stage (fun () -> F.Bilinear.multiply ~cutoff:8 F.Instances.strassen a b));
      Test.make ~name:"build matmul circuit N=16 d=2"
        (Staged.stage (fun () ->
             T.Matmul_circuit.build ~mode:Tcmm_threshold.Builder.Count_only
               ~algo:F.Instances.strassen ~schedule:sched16 ~entry_bits:1 ~n:16 ()));
      Test.make ~name:"simulate matmul circuit N=16"
        (Staged.stage (fun () -> T.Matmul_circuit.run built ~a:a16 ~b:b16));
      Test.make ~name:"exact counts via DP (trace N=1024 d=3)"
        (Staged.stage (fun () ->
             T.Gate_count.trace ~algo:F.Instances.strassen
               ~schedule:(T.Level_schedule.theorem45 ~profile ~d:3 ~n:1024)
               ~entry_bits:10 ~n:1024 ()));
    ]
  in
  let measured = Bench_util.measure_ns tests in
  let rows =
    List.map (fun (name, ns) -> [ Tb.Str name; Bench_util.ns_cell ns ]) measured
  in
  List.iter
    (fun (name, ns) ->
      Bench_util.record ~experiment:"e8"
        [ ("name", Bench_util.Str name); ("ns_per_run", Bench_util.Float ns) ])
    measured;
  Tb.print ~title:"wall-clock (one core)" ~header:[ "bench"; "time/run" ] ~rows;
  (* Scalar-multiplication counts contextualize the CPU crossover. *)
  let rows =
    List.map
      (fun n ->
        [
          Tb.Int n;
          Tb.Int (n * n * n);
          Tb.Int (F.Bilinear.scalar_multiplications F.Instances.strassen ~n ~cutoff:8);
          Tb.Int (F.Bilinear.scalar_multiplications F.Instances.strassen ~n ~cutoff:1);
        ])
      [ 32; 64; 128; 256; 512 ]
  in
  Tb.print ~title:"scalar multiplications: naive vs recursive Strassen"
    ~header:[ "N"; "naive N^3"; "strassen cutoff 8"; "strassen cutoff 1" ]
    ~rows


(* E17: evaluation engines — gate-at-a-time reference interpreter vs the
   packed levelized engine (sequential, multicore, and batched). *)
let e17 () =
  Bench_util.header
    "E17: simulator engines (reference vs packed vs parallel vs batched)";
  let module Th = Tcmm_threshold in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let best n f =
    let r, t0 = time f in
    let tmin = ref t0 in
    for _ = 2 to n do
      let _, t = time f in
      if t < !tmin then tmin := t
    done;
    (r, !tmin)
  in
  let batch_size = 64 in
  let bench_circuit ~label (c : Th.Circuit.t) (inputs : bool array array) =
    let iv = inputs.(0) in
    let p, t_pack = time (fun () -> Th.Packed.of_circuit c) in
    let r_ref, t_ref = time (fun () -> Th.Simulator.run c iv) in
    let r_seq, t_seq = best 3 (fun () -> Th.Packed.run p iv) in
    let agree r =
      r.Th.Simulator.outputs = r_ref.Th.Simulator.outputs
      && r.Th.Simulator.firings = r_ref.Th.Simulator.firings
      && r.Th.Simulator.level_firings = r_ref.Th.Simulator.level_firings
    in
    if not (agree r_seq) then failwith (label ^ ": packed-seq disagrees");
    let par_times =
      List.map
        (fun domains ->
          Th.Packed.Pool.with_pool ~domains (fun pool ->
              let r, t = best 3 (fun () -> Th.Packed.run ~pool p iv) in
              if not (agree r) then
                failwith
                  (Printf.sprintf "%s: packed %d domains disagrees" label domains);
              (domains, t)))
        [ 2; 4 ]
    in
    let br, t_batch = best 2 (fun () -> Th.Packed.run_batch p inputs) in
    if
      Th.Packed.batch_outputs br ~lane:0 <> r_ref.Th.Simulator.outputs
      || Th.Packed.batch_firings br ~lane:0 <> r_ref.Th.Simulator.firings
    then failwith (label ^ ": batched lane 0 disagrees");
    let t_batch_vec = t_batch /. float_of_int batch_size in
    let sec t = Tb.Str (Printf.sprintf "%.4f s" t) in
    let rows =
      [
        [ Tb.Str "reference (gate-at-a-time)"; sec t_ref; Tb.Str "1.0x" ]
      ; [
          Tb.Str "packed sequential";
          sec t_seq;
          Tb.Str (Printf.sprintf "%.0fx" (t_ref /. t_seq));
        ]
      ]
      @ List.map
          (fun (d, t) ->
            [
              Tb.Str (Printf.sprintf "packed %d domains" d);
              sec t;
              Tb.Str (Printf.sprintf "%.0fx" (t_ref /. t));
            ])
          par_times
      @ [
          [
            Tb.Str (Printf.sprintf "batched B=%d (per vector)" batch_size);
            sec t_batch_vec;
            Tb.Str (Printf.sprintf "%.0fx" (t_ref /. t_batch_vec));
          ];
        ]
    in
    Tb.print
      ~title:
        (Printf.sprintf "%s: %d gates, %d levels, pack %.2f s" label
           (Th.Packed.num_gates p) (Th.Packed.num_levels p) t_pack)
      ~header:[ "engine"; "time/vector"; "speedup" ]
      ~rows;
    Printf.printf "packed vs reference: %.1fx; batched vs packed one-at-a-time: %.1fx\n"
      (t_ref /. t_seq)
      (t_seq /. t_batch_vec);
    Bench_util.record ~experiment:"e17"
      ([
         ("circuit", Bench_util.Str label);
         ("gates", Bench_util.Int (Th.Packed.num_gates p));
         ("levels", Bench_util.Int (Th.Packed.num_levels p));
         ("pool_edges", Bench_util.Int (Th.Packed.pool_edges p));
         ("pack_seconds", Bench_util.Float t_pack);
         ("reference_seconds", Bench_util.Float t_ref);
         ("packed_seq_seconds", Bench_util.Float t_seq);
         ("packed_seq_speedup_vs_reference", Bench_util.Float (t_ref /. t_seq));
         ("batch_size", Bench_util.Int batch_size);
         ("batched_seconds_total", Bench_util.Float t_batch);
         ("batched_seconds_per_vector", Bench_util.Float t_batch_vec);
         ( "batched_speedup_vs_packed_seq",
           Bench_util.Float (t_seq /. t_batch_vec) );
       ]
      @ List.map
          (fun (d, t) ->
            (Printf.sprintf "packed_domains%d_seconds" d, Bench_util.Float t))
          par_times)
  in
  let rng = Tcmm_util.Prng.create ~seed:11 in
  let mm = Lazy.force shared_mm16 in
  let mm_inputs =
    Array.init batch_size (fun _ ->
        let a = F.Matrix.random rng ~rows:16 ~cols:16 ~lo:0 ~hi:1 in
        let b = F.Matrix.random rng ~rows:16 ~cols:16 ~lo:0 ~hi:1 in
        T.Matmul_circuit.encode_inputs mm ~a ~b)
  in
  bench_circuit ~label:"matmul N=16 d=2 (Theorem 4.9)"
    (Option.get mm.T.Matmul_circuit.circuit)
    mm_inputs;
  let tr = Lazy.force shared_tr16 in
  let tr_inputs =
    Array.init batch_size (fun _ ->
        T.Trace_circuit.encode_input tr
          (F.Matrix.random rng ~rows:16 ~cols:16 ~lo:0 ~hi:1))
  in
  bench_circuit ~label:"trace N=16 d=2 (Theorem 4.5)"
    (Option.get tr.T.Trace_circuit.circuit)
    tr_inputs

(* E18: serving throughput — the same request stream one-at-a-time vs
   pipelined through the daemon's coalescing batcher.  Forks a real
   server on a Unix socket, so the numbers include protocol encoding,
   socket hops and scheduling, not just circuit evaluation. *)
let e18 () =
  Bench_util.header
    "E18: serving throughput (coalesced batches vs one request per run)";
  let module Sv = Tcmm_server in
  let module P = Sv.Protocol in
  (* Port 0: the kernel assigns a free ephemeral port in the parent,
     the child serves the pre-bound fd — no fixed-port collisions, no
     bind-retry loop. *)
  let cfg =
    {
      (Sv.Server.default_config (P.Tcp ("127.0.0.1", 0))) with
      Sv.Server.cache_capacity = 4;
    }
  in
  let listen_fd, addr = Sv.Server.bind cfg in
  let cfg = { cfg with Sv.Server.addr } in
  match Unix.fork () with
  | 0 ->
      (try Sv.Server.serve_fd cfg listen_fd with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close listen_fd;
      Fun.protect
        ~finally:(fun () ->
          (try ignore (Sv.Client.shutdown addr) with _ -> ());
          ignore (Unix.waitpid [] pid))
        (fun () ->
          let cl = Sv.Client.connect addr in
          Fun.protect
            ~finally:(fun () -> Sv.Client.close cl)
            (fun () ->
              let spec =
                {
                  P.kind = P.Matmul;
                  algo = "strassen";
                  schedule = "thm45";
                  d = 2;
                  n = 16;
                  entry_bits = 1;
                  signed = false;
                  tau = 0;
                  kronpow = false;
                }
              in
              (* Warm the circuit cache so both passes measure serving,
                 not the one-off build. *)
              let build_seconds =
                match Sv.Client.request cl (P.Compile spec) with
                | Ok (P.Compiled c) -> c.P.build_seconds
                | Ok (P.Error e) | Error e -> failwith ("e18 compile: " ^ e)
                | Ok _ -> failwith "e18 compile: unexpected response"
              in
              Printf.printf "compiled matmul N=16 d=2 in %.2f s\n%!" build_seconds;
              let rng = Tcmm_util.Prng.create ~seed:3 in
              let total = 248 (* 4 full 62-lane batches when coalesced *) in
              let pairs =
                Array.init total (fun _ ->
                    ( F.Matrix.random rng ~rows:16 ~cols:16 ~lo:0 ~hi:1,
                      F.Matrix.random rng ~rows:16 ~cols:16 ~lo:0 ~hi:1 ))
              in
              let reqs =
                Array.map (fun (a, b) -> P.Run_matmul (spec, a, b)) pairs
              in
              let expect_result i = function
                | Ok (P.Matmul_result (c, _)) ->
                    let a, b = pairs.(i) in
                    if not (F.Matrix.equal c (F.Matrix.mul a b)) then
                      failwith "e18: served product disagrees with reference"
                | Ok (P.Error e) | Error e -> failwith ("e18 run: " ^ e)
                | Ok _ -> failwith "e18 run: unexpected response"
              in
              let time f =
                let t0 = Unix.gettimeofday () in
                f ();
                Unix.gettimeofday () -. t0
              in
              let metrics () =
                match Sv.Client.request cl P.Metrics with
                | Ok (P.Metrics_result m) -> (m.P.batches, m.P.lanes)
                | _ -> failwith "e18: metrics request failed"
              in
              (* One request per run: a strict request-response lockstep,
                 so every evaluation is a 1-lane batch. *)
              let t_seq =
                time (fun () ->
                    Array.iteri
                      (fun i r -> expect_result i (Sv.Client.request cl r))
                      reqs)
              in
              let batches0, lanes0 = metrics () in
              (* Pipelined: the whole burst is in flight at once and the
                 server coalesces it into full 62-lane batches. *)
              let t_pipe =
                time (fun () ->
                    Array.iter (Sv.Client.send cl) reqs;
                    Array.iteri
                      (fun i _ -> expect_result i (Sv.Client.recv cl))
                      reqs)
              in
              let batches1, lanes1 = metrics () in
              let batches = batches1 - batches0 in
              let occupancy_mean =
                float_of_int (lanes1 - lanes0) /. float_of_int (max 1 batches)
              in
              let per_sec t = float_of_int total /. t in
              let speedup = t_seq /. t_pipe in
              Tb.print
                ~title:
                  (Printf.sprintf
                     "E18: %d matmul runs (N=16, strassen, thm45 d=2) over loopback TCP"
                     total)
                ~header:[ "mode"; "total"; "throughput"; "speedup" ]
                ~rows:
                  [
                    [
                      Tb.Str "one request per run";
                      Tb.Str (Printf.sprintf "%.3f s" t_seq);
                      Tb.Str (Printf.sprintf "%.0f req/s" (per_sec t_seq));
                      Tb.Str "1.0x";
                    ];
                    [
                      Tb.Str "pipelined (coalesced)";
                      Tb.Str (Printf.sprintf "%.3f s" t_pipe);
                      Tb.Str (Printf.sprintf "%.0f req/s" (per_sec t_pipe));
                      Tb.Str (Printf.sprintf "%.1fx" speedup);
                    ];
                  ];
              Printf.printf
                "coalescing speedup: %.1fx (pipelined pass: %d batches, mean \
                 occupancy %.1f lanes)\n"
                speedup batches occupancy_mean;
              Bench_util.record ~experiment:"e18"
                [
                  ("circuit", Bench_util.Str "matmul N=16 d=2 (Theorem 4.9)");
                  ("requests", Bench_util.Int total);
                  ("build_seconds", Bench_util.Float build_seconds);
                  ("sequential_seconds", Bench_util.Float t_seq);
                  ("sequential_req_per_s", Bench_util.Float (per_sec t_seq));
                  ("pipelined_seconds", Bench_util.Float t_pipe);
                  ("pipelined_req_per_s", Bench_util.Float (per_sec t_pipe));
                  ("coalescing_speedup", Bench_util.Float speedup);
                  ("server_batches", Bench_util.Int batches);
                  ("mean_batch_occupancy", Bench_util.Float occupancy_mean);
                ]))

(* E19: the correctness harness itself — certificate battery, differential
   fuzzing, and the mutation sweep's kill rate — recorded as the
   BENCH_check.json artifact so correctness coverage is tracked across
   PRs the same way perf is. *)
let e19 () =
  Bench_util.header
    "E19: correctness harness (certificates, fuzzing, mutation kill rate)";
  let module Ck = Tcmm_check in
  let can_fork =
    (* Unix.fork is forbidden once any domain has been spawned (e17
       does); probe so a full-suite run still yields E19, just without
       the forked-server fuzz leg. *)
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        true
    | exception Failure _ -> false
  in
  let r = Ck.Harness.run ~seed:1 ~cases:50 ~mutants:120 ~include_server:can_fork () in
  Ck.Harness.print_report r;
  let killed = r.Ck.Harness.mutation.Ck.Mutate.structural + r.Ck.Harness.mutation.Ck.Mutate.behavioral in
  Bench_util.record ~experiment:"e19"
    ([
       ("certificates", Bench_util.Int (List.length r.Ck.Harness.certificates));
       ( "certificates_ok",
         Bench_util.Int
           (List.length (List.filter Ck.Certify.ok r.Ck.Harness.certificates)) );
       ("fuzz_cases", Bench_util.Int r.Ck.Harness.fuzz.Ck.Fuzz.tested);
       ( "fuzz_failures",
         Bench_util.Int (List.length r.Ck.Harness.fuzz.Ck.Fuzz.failures) );
       ( "server_fuzz_cases",
         Bench_util.Int
           (match r.Ck.Harness.server_fuzz with
           | Some o -> o.Ck.Fuzz.tested
           | None -> 0) );
       ("mutants", Bench_util.Int r.Ck.Harness.mutation.Ck.Mutate.total);
       ("mutants_killed", Bench_util.Int killed);
       ("kill_rate", Bench_util.Float (Ck.Mutate.kill_rate r.Ck.Harness.mutation));
       ("protocol_cuts", Bench_util.Int r.Ck.Harness.protocol.Ck.Mutate.cuts);
       ("protocol_killed", Bench_util.Int r.Ck.Harness.protocol.Ck.Mutate.killed);
       ("ok", Bench_util.Bool (Ck.Harness.all_ok r));
     ]
    @ List.map
        (fun (op, k, t) ->
          ( op ^ "_kill_rate",
            Bench_util.Float (float_of_int k /. float_of_int (max 1 t)) ))
        r.Ck.Harness.mutation.Ck.Mutate.per_op);
  if not (Ck.Harness.all_ok r) then failwith "e19: correctness harness FAILED"

(* E21: serving robustness under injected faults — throughput and tail
   latency of the retrying client as the transport fault rate rises,
   plus the shed rate when a pipelined burst overruns the admission
   gate.  Recorded as BENCH_serve_robust.json. *)
let e21 () =
  Bench_util.header
    "E21: serving robustness (throughput/p99 under faults, shedding at overload)";
  let module Sv = Tcmm_server in
  let module P = Sv.Protocol in
  let clock = Tcmm_util.Clock.now in
  let spec =
    { P.kind = P.Matmul; algo = "strassen"; schedule = "thm45"; d = 2;
      n = 4; entry_bits = 2; signed = true; tau = 0; kronpow = false }
  in
  let start_server cfg =
    let listen_fd, addr = Sv.Server.bind cfg in
    let cfg = { cfg with Sv.Server.addr } in
    match Unix.fork () with
    | 0 ->
        (try Sv.Server.serve_fd cfg listen_fd with _ -> ());
        Unix._exit 0
    | pid ->
        Unix.close listen_fd;
        (addr, pid)
  in
  let stop_server (addr, pid) =
    (try ignore (Sv.Client.shutdown addr) with _ -> ());
    ignore (Unix.waitpid [] pid)
  in
  let warm addr =
    match Sv.Client.call addr (P.Compile spec) with
    | Ok (P.Compiled _) -> ()
    | _ -> failwith "e21: warm-up compile failed"
  in
  let raw_send addr bytes =
    (* Below-the-client fault injection: a raw connection the server
       must survive without disturbing well-formed requests. *)
    match Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        (try
           Unix.connect fd (P.sockaddr_of_addr addr);
           ignore (Unix.write_substring fd bytes 0 (String.length bytes))
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let requests = 200 in
  let rates = [ 0.0; 0.1; 0.25; 0.5 ] in
  let rows, json_rows =
    List.split
      (List.map
         (fun rate ->
           let cfg =
             {
               (Sv.Server.default_config (P.Tcp ("127.0.0.1", 0))) with
               Sv.Server.cache_capacity = 4;
             }
           in
           let server = start_server cfg in
           let addr, _ = server in
           Fun.protect
             ~finally:(fun () -> stop_server server)
             (fun () ->
               warm addr;
               let rng = Tcmm_util.Prng.create ~seed:21 in
               let lat = Array.make requests 0. in
               let t0 = clock () in
               for i = 0 to requests - 1 do
                 let hi = 3 in
                 let a = F.Matrix.random rng ~rows:4 ~cols:4 ~lo:(-hi) ~hi in
                 let b = F.Matrix.random rng ~rows:4 ~cols:4 ~lo:(-hi) ~hi in
                 let req = P.Run_matmul (spec, a, b) in
                 let q0 = clock () in
                 if Tcmm_util.Prng.float rng < rate then begin
                   (* A dead half-frame: the server reaps the broken
                      connection while the logical request still has to
                      complete through the retrying client. *)
                   let full = P.frame (P.encode_request req) in
                   let cut =
                     1 + Tcmm_util.Prng.int rng ~bound:(String.length full - 1)
                   in
                   raw_send addr (String.sub full 0 cut)
                 end;
                 (match Sv.Client.call ~seed:(i + 1) addr req with
                 | Ok (P.Matmul_result (c, _)) ->
                     if not (F.Matrix.equal c (F.Matrix.mul a b)) then
                       failwith "e21: served product disagrees with reference"
                 | Ok _ -> failwith "e21: unexpected response"
                 | Error f ->
                     failwith
                       (Format.asprintf "e21: request failed: %a"
                          Sv.Client.pp_failure f));
                 lat.(i) <- (clock () -. q0) *. 1000.
               done;
               let total = clock () -. t0 in
               Array.sort compare lat;
               let p99 = lat.(min (requests - 1) (requests * 99 / 100)) in
               let thr = float_of_int requests /. total in
               ( [
                   Tb.Str (Printf.sprintf "%.2f" rate);
                   Tb.Str (Printf.sprintf "%.0f req/s" thr);
                   Tb.Str (Printf.sprintf "%.2f ms" p99);
                 ],
                 (rate, thr, p99) )))
         rates)
  in
  Tb.print
    ~title:
      (Printf.sprintf
         "E21: %d matmul requests (N=4, strassen, thm45 d=2), fault-injected \
          loopback TCP"
         requests)
    ~header:[ "fault rate"; "throughput"; "p99 latency" ] ~rows;
  (* Overload: a single-write pipelined burst against a small admission
     gate; the shed rate is the fraction answered [Overloaded]. *)
  let burst = 200 in
  let cfg =
    {
      (Sv.Server.default_config (P.Tcp ("127.0.0.1", 0))) with
      Sv.Server.cache_capacity = 4;
      max_pending = 8;
    }
  in
  let server = start_server cfg in
  let addr, _ = server in
  let shed, completed =
    Fun.protect
      ~finally:(fun () -> stop_server server)
      (fun () ->
        warm addr;
        let rng = Tcmm_util.Prng.create ~seed:22 in
        let reqs =
          Array.init burst (fun _ ->
              let a = F.Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3 in
              let b = F.Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3 in
              P.Run_matmul (spec, a, b))
        in
        let cl = Sv.Client.connect addr in
        Fun.protect
          ~finally:(fun () -> Sv.Client.close cl)
          (fun () ->
            Array.iter (Sv.Client.send cl) reqs;
            let shed = ref 0 and completed = ref 0 in
            Array.iter
              (fun _ ->
                match Sv.Client.recv cl with
                | Ok P.Overloaded -> incr shed
                | Ok (P.Matmul_result _) -> incr completed
                | Ok (P.Error e) | Error e -> failwith ("e21 overload: " ^ e)
                | Ok _ -> failwith "e21 overload: unexpected response")
              reqs;
            (!shed, !completed)))
  in
  let shed_rate = float_of_int shed /. float_of_int burst in
  Printf.printf
    "overload: %d-request burst vs max_pending=8: %d shed, %d completed \
     (shed rate %.2f)\n"
    burst shed completed shed_rate;
  Bench_util.record ~experiment:"e21"
    ([
       ("circuit", Bench_util.Str "matmul N=4 d=2 (signed, 2-bit entries)");
       ("requests_per_rate", Bench_util.Int requests);
       ("overload_burst", Bench_util.Int burst);
       ("overload_shed", Bench_util.Int shed);
       ("overload_completed", Bench_util.Int completed);
       ("overload_shed_rate", Bench_util.Float shed_rate);
     ]
    @ List.concat_map
        (fun (rate, thr, p99) ->
          let tag = Printf.sprintf "fault_%02.0f" (rate *. 100.) in
          [
            (tag ^ "_req_per_s", Bench_util.Float thr);
            (tag ^ "_p99_ms", Bench_util.Float p99);
          ])
        json_rows)

(* E23: template-specialized evaluation kernels — batched evaluation
   with kernels vs the generic CSR loop vs one-vector-at-a-time, across
   domain counts.  Every lane is checked bit-identical (outputs,
   firings, per-level firings) between the kernel and generic engines
   before any number is reported, so a kernel miscompile fails the run
   instead of skewing it. *)
let e23 ?(ns = [ 16; 32 ]) ?(domain_counts = [ 1; 2; 4 ]) () =
  Bench_util.header
    "E23: evaluation kernels (specialized vs generic batched vs packed-seq)";
  let module Th = Tcmm_threshold in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let best n f =
    let r, t0 = time f in
    let tmin = ref t0 in
    for _ = 2 to n do
      let _, t = time f in
      if t < !tmin then tmin := t
    done;
    (r, !tmin)
  in
  let batch = 62 in
  List.iter
    (fun n ->
      let sched = T.Level_schedule.theorem45 ~profile ~d:2 ~n in
      let built, t_build =
        time (fun () ->
            T.Matmul_circuit.build ~mode:Th.Builder.Direct
              ~algo:F.Instances.strassen ~schedule:sched ~entry_bits:1 ~n ())
      in
      let arena = Th.Builder.arena built.T.Matmul_circuit.builder in
      let p_kern, t_lower = time (fun () -> Th.Packed.of_arena ~kernels:true arena) in
      let p_gen = Th.Packed.of_arena ~kernels:false arena in
      let cov = Th.Packed.coverage p_kern in
      let coverage =
        float_of_int cov.Th.Packed.kernel_gates
        /. float_of_int (max 1 (Th.Packed.num_gates p_kern))
      in
      let rng = Tcmm_util.Prng.create ~seed:23 in
      let inputs =
        Array.init batch (fun _ ->
            let a = F.Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 in
            let b = F.Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 in
            T.Matmul_circuit.encode_inputs built ~a ~b)
      in
      (* Differential gate before any timing: kernel vs generic on every
         lane and every observable field. *)
      let br_k = Th.Packed.run_batch p_kern inputs in
      let br_g = Th.Packed.run_batch p_gen inputs in
      for lane = 0 to batch - 1 do
        if
          Th.Packed.batch_outputs br_k ~lane <> Th.Packed.batch_outputs br_g ~lane
          || Th.Packed.batch_firings br_k ~lane
             <> Th.Packed.batch_firings br_g ~lane
          || Th.Packed.batch_level_firings br_k ~lane
             <> Th.Packed.batch_level_firings br_g ~lane
        then
          failwith
            (Printf.sprintf "e23: kernel vs generic divergence at N=%d lane %d"
               n lane)
      done;
      let r_seq = Th.Packed.run p_kern inputs.(0) in
      if r_seq.Th.Simulator.outputs <> Th.Packed.batch_outputs br_k ~lane:0 then
        failwith (Printf.sprintf "e23: packed-seq vs kernel batch divergence at N=%d" n);
      let rows =
        List.map
          (fun domains ->
            let with_pool f =
              if domains = 1 then f None
              else Th.Packed.Pool.with_pool ~domains (fun p -> f (Some p))
            in
            with_pool (fun pool ->
                (* One shared workspace keeps the 13 MB wire buffer out
                   of both timed legs — the comparison stays apples to
                   apples. *)
                let ws = Th.Packed.workspace () in
                let _, t_seq = best 2 (fun () -> Th.Packed.run ?pool p_kern inputs.(0)) in
                let _, t_gen = best 5 (fun () -> Th.Packed.run_batch ?pool ~ws p_gen inputs) in
                let _, t_kern = best 5 (fun () -> Th.Packed.run_batch ?pool ~ws p_kern inputs) in
                let gen_vec = t_gen /. float_of_int batch in
                let kern_vec = t_kern /. float_of_int batch in
                Bench_util.record ~experiment:"e23"
                  [
                    ("circuit", Bench_util.Str (Printf.sprintf "matmul N=%d d=2 (Theorem 4.9)" n));
                    ("n", Bench_util.Int n);
                    ("domains", Bench_util.Int domains);
                    ("gates", Bench_util.Int (Th.Packed.num_gates p_kern));
                    ("levels", Bench_util.Int (Th.Packed.num_levels p_kern));
                    ("pool_edges", Bench_util.Int (Th.Packed.pool_edges p_kern));
                    ("build_seconds", Bench_util.Float t_build);
                    ("lower_seconds", Bench_util.Float t_lower);
                    ("kernel_gates", Bench_util.Int cov.Th.Packed.kernel_gates);
                    ("fallback_gates", Bench_util.Int cov.Th.Packed.fallback_gates);
                    ("kernel_segments", Bench_util.Int cov.Th.Packed.kernel_segments);
                    ("generic_segments", Bench_util.Int cov.Th.Packed.generic_segments);
                    ("kernel_coverage", Bench_util.Float coverage);
                    ("batch_size", Bench_util.Int batch);
                    ("packed_seq_seconds", Bench_util.Float t_seq);
                    ("generic_batched_per_vector", Bench_util.Float gen_vec);
                    ("kernel_batched_per_vector", Bench_util.Float kern_vec);
                    ("kernel_speedup_vs_generic", Bench_util.Float (t_gen /. t_kern));
                    ( "kernel_batched_speedup_vs_packed_seq",
                      Bench_util.Float (t_seq /. kern_vec) );
                  ];
                [
                  Tb.Int domains;
                  Tb.Str (Printf.sprintf "%.2f ms" (t_seq *. 1e3));
                  Tb.Str (Printf.sprintf "%.3f ms" (gen_vec *. 1e3));
                  Tb.Str (Printf.sprintf "%.3f ms" (kern_vec *. 1e3));
                  Tb.Str (Printf.sprintf "%.1fx" (t_gen /. t_kern));
                ]))
          domain_counts
      in
      Tb.print
        ~title:
          (Printf.sprintf
             "matmul N=%d d=2: %d gates, kernel coverage %.1f%% (%d/%d segments), B=%d"
             n (Th.Packed.num_gates p_kern) (100. *. coverage)
             cov.Th.Packed.kernel_segments
             (cov.Th.Packed.kernel_segments + cov.Th.Packed.generic_segments)
             batch)
        ~header:
          [ "domains"; "seq/vector"; "generic batched/vec"; "kernel batched/vec"; "kernel speedup" ]
        ~rows;
      Gc.compact ())
    ns

(* E24: the artifact store — what a compile costs cold, what persisting
   it costs, and what the mmap warm load gives back.  One spec per N
   (the flagship matmul d=2 family), each leg differentially gated: the
   store-loaded circuit must be structurally identical to the fresh
   build and answer bit-identically (values and firings) on every lane
   before any timing is reported.  At the flagship N=16 a warm start
   (one verified mmap load) must beat a cold start (build + pack +
   persist) by at least 10x — that restart ratio is the point of the
   store, so a regression fails the bench rather than quietly shipping
   a slow loader.  Other sizes record their ratios without a floor:
   load time is CRC-64-throughput-bound (about 1 GB/s per core) and so
   linear in artifact bytes, which grow faster than build time past
   N=16 on a single core.  Recorded as BENCH_store.json. *)
let e24 ?(ns = [ 8; 16; 32 ]) () =
  Bench_util.header "E24: artifact store (cold build vs save vs warm load)";
  let module Th = Tcmm_threshold in
  let module A = Tcmm_store.Artifact in
  let module St = Tcmm_store.Store in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let best k f =
    let r, t0 = time f in
    let tmin = ref t0 in
    for _ = 2 to k do
      let _, t = time f in
      if t < !tmin then tmin := t
    done;
    (r, !tmin)
  in
  let dir = Filename.temp_file "tcmm_bench_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let remove_dir () =
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:remove_dir @@ fun () ->
  let store =
    match St.create ~dir () with
    | Ok s -> s
    | Error m -> failwith ("e24: cannot open store: " ^ m)
  in
  let batch = 16 in
  let rows =
    List.map
      (fun n ->
        let sched = T.Level_schedule.theorem45 ~profile ~d:2 ~n in
        let (built, packed), t_cold =
          time (fun () ->
              let built =
                T.Matmul_circuit.build ~mode:Th.Builder.Direct
                  ~algo:F.Instances.strassen ~schedule:sched ~entry_bits:1 ~n
                  ()
              in
              (built, T.Matmul_circuit.pack ~kernels:true built))
        in
        let key =
          Printf.sprintf "matmul|strassen|thm45|d=2|n=%d|b=1|signed=false|tau=0"
            n
        in
        let meta =
          {
            A.m_key = key;
            m_templates = true;
            m_kernels = true;
            m_build_seconds = t_cold;
            m_stats = T.Matmul_circuit.stats built;
            m_io =
              A.Matmul_io
                {
                  layout_a = built.T.Matmul_circuit.layout_a;
                  layout_b = built.T.Matmul_circuit.layout_b;
                  c_grid = built.T.Matmul_circuit.c_grid;
                };
          }
        in
        let bytes, t_save =
          time (fun () ->
              match St.save store ~meta packed with
              | Ok b -> b
              | Error m -> failwith ("e24: save failed: " ^ m))
        in
        let loaded, t_load =
          best 3 (fun () ->
              match St.find store ~key with
              | Some a -> a
              | None -> failwith "e24: warm load missed a saved artifact")
        in
        let lp = loaded.A.a_packed in
        if not (Th.Packed.structural_equal packed lp) then
          failwith
            (Printf.sprintf "e24: loaded artifact differs structurally at N=%d"
               n);
        (* Differential gate: fresh vs loaded vs the integer reference,
           every lane, values and firings. *)
        let rng = Tcmm_util.Prng.create ~seed:24 in
        let pairs =
          Array.init batch (fun _ ->
              ( F.Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1,
                F.Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 ))
        in
        let inputs =
          Array.map
            (fun (a, b) -> T.Matmul_circuit.encode_inputs built ~a ~b)
            pairs
        in
        let br_f = Th.Packed.run_batch packed inputs in
        let br_l = Th.Packed.run_batch lp inputs in
        Array.iteri
          (fun lane (a, b) ->
            let m_f =
              T.Matmul_circuit.decode built (Th.Packed.batch_value br_f ~lane)
            in
            let m_l =
              T.Matmul_circuit.decode built (Th.Packed.batch_value br_l ~lane)
            in
            if not (F.Matrix.equal m_f (F.Matrix.mul a b)) then
              failwith
                (Printf.sprintf "e24: fresh build wrong at N=%d lane %d" n lane);
            if not (F.Matrix.equal m_f m_l) then
              failwith
                (Printf.sprintf
                   "e24: store-loaded circuit diverges at N=%d lane %d" n lane);
            if
              Th.Packed.batch_firings br_f ~lane
              <> Th.Packed.batch_firings br_l ~lane
            then
              failwith
                (Printf.sprintf "e24: firings diverge at N=%d lane %d" n lane))
          pairs;
        let cold_start = t_cold +. t_save in
        let speedup = cold_start /. t_load in
        if n = 16 && speedup < 10. then
          failwith
            (Printf.sprintf
               "e24: warm start only %.1fx faster than a cold start at N=%d"
               speedup n);
        Bench_util.record ~experiment:"e24"
          [
            ("n", Bench_util.Int n);
            ("gates", Bench_util.Int (Th.Packed.num_gates packed));
            ("artifact_bytes", Bench_util.Int bytes);
            ("cold_build_seconds", Bench_util.Float t_cold);
            ("save_seconds", Bench_util.Float t_save);
            ("warm_load_seconds", Bench_util.Float t_load);
            ("warm_speedup_vs_cold_start", Bench_util.Float speedup);
            ("warm_speedup_vs_build", Bench_util.Float (t_cold /. t_load));
          ];
        [
          Tb.Int n;
          Tb.Int (Th.Packed.num_gates packed);
          Tb.Str (Printf.sprintf "%.1f MiB" (float_of_int bytes /. 1048576.));
          Tb.Str (Printf.sprintf "%.2f s" t_cold);
          Tb.Str (Printf.sprintf "%.3f s" t_save);
          Tb.Str (Printf.sprintf "%.3f s" t_load);
          Tb.Str (Printf.sprintf "%.1fx" speedup);
        ])
      ns
  in
  Tb.print
    ~title:"matmul d=2 b=1: compile once, load warm everywhere after"
    ~header:
      [
        "N"; "gates"; "artifact"; "cold build"; "save"; "warm load";
        "warm vs cold start";
      ]
    ~rows

(* E25: sharded fleet serving — aggregate pipelined throughput of a
   K-worker fleet against the sequential single-process baseline on the
   same tiny-circuit workload as E21.  Every reply in every leg is
   verified bit-exact against the reference product before any number
   is reported, the spec-affinity router gets its own differential leg,
   and the run fails hard if the fleet does not clear [gate]x the
   baseline. *)
let e25 ?(workers = 8) ?(per_client = 400) ?(seq_requests = 300)
    ?(gate = 5.0) () =
  Bench_util.header
    (Printf.sprintf "E25: fleet serving throughput (%d workers)" workers);
  let module Sv = Tcmm_server in
  let module P = Sv.Protocol in
  let module Fl = Sv.Fleet in
  let clock = Tcmm_util.Clock.now in
  let spec =
    { P.kind = P.Matmul; algo = "strassen"; schedule = "thm45"; d = 2;
      n = 4; entry_bits = 2; signed = true; tau = 0; kronpow = false }
  in
  let rand_pair rng =
    let a = F.Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3 in
    let b = F.Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3 in
    (a, b)
  in
  let dir = Filename.temp_file "tcmm_e25" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rm_dir () =
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:rm_dir @@ fun () ->
  let base_cfg =
    {
      (Sv.Server.default_config (P.Tcp ("127.0.0.1", 0))) with
      Sv.Server.cache_capacity = 8;
      store = Some dir;
    }
  in
  (* Sequential single-process baseline: the E21 shape, one request in
     flight at a time against one server process. *)
  let seq_rps =
    let listen_fd, addr = Sv.Server.bind base_cfg in
    let cfg = { base_cfg with Sv.Server.addr = addr } in
    match Unix.fork () with
    | 0 ->
        (try Sv.Server.serve_fd cfg listen_fd with _ -> ());
        Unix._exit 0
    | pid ->
        Unix.close listen_fd;
        Fun.protect
          ~finally:(fun () ->
            (try ignore (Sv.Client.shutdown addr) with _ -> ());
            ignore (Unix.waitpid [] pid))
          (fun () ->
            (match Sv.Client.call addr (P.Compile spec) with
            | Ok (P.Compiled _) -> ()
            | _ -> failwith "e25: baseline warm-up compile failed");
            let rng = Tcmm_util.Prng.create ~seed:25 in
            let t0 = clock () in
            for i = 1 to seq_requests do
              let a, b = rand_pair rng in
              match Sv.Client.call ~seed:i addr (P.Run_matmul (spec, a, b)) with
              | Ok (P.Matmul_result (c, _)) ->
                  if not (F.Matrix.equal c (F.Matrix.mul a b)) then
                    failwith "e25: baseline product disagrees with reference"
              | Ok _ -> failwith "e25: unexpected baseline response"
              | Error f ->
                  failwith
                    (Format.asprintf "e25: baseline request failed: %a"
                       Sv.Client.pp_failure f)
            done;
            float_of_int seq_requests /. (clock () -. t0))
  in
  Printf.printf "sequential single-process baseline: %.0f req/s\n%!" seq_rps;
  let fleet_cfg = { (Fl.default_config base_cfg) with Fl.workers } in
  let handle = Fl.bind fleet_cfg in
  let endpoints = Array.of_list (Fl.endpoints handle) in
  let control = Fl.control_addr handle in
  let sup_pid =
    match Unix.fork () with
    | 0 ->
        (try Fl.supervise handle with _ -> ());
        Unix._exit 0
    | pid ->
        Fl.close_handle handle;
        pid
  in
  let fleet_rps, checked, agg_run =
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill sup_pid Sys.sigterm with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] sup_pid))
      (fun () ->
        (* Warm every worker cache through its own endpoint; the shared
           store makes all but the first compile a warm load. *)
        Array.iter
          (fun ep ->
            match Sv.Client.call ep (P.Compile spec) with
            | Ok (P.Compiled _) -> ()
            | _ -> failwith "e25: fleet warm-up compile failed")
          endpoints;
        (* Differential leg: spec-affinity routed requests through the
           shard router, every reply verified bit-exact. *)
        let pool = Sv.Client.Pool.create (Array.to_list endpoints) in
        let key = Sv.Client.Pool.key_of_spec spec in
        let rng = Tcmm_util.Prng.create ~seed:2525 in
        let checked = 50 in
        for i = 1 to checked do
          let a, b = rand_pair rng in
          match
            Sv.Client.Pool.call ~seed:i pool ~key (P.Run_matmul (spec, a, b))
          with
          | Ok (P.Matmul_result (c, _)) ->
              if not (F.Matrix.equal c (F.Matrix.mul a b)) then
                failwith "e25: fleet product disagrees with reference"
          | Ok _ -> failwith "e25: unexpected fleet response"
          | Error f ->
              failwith
                (Format.asprintf "e25: fleet request failed: %a"
                   Sv.Client.pp_failure f)
        done;
        (* Timed leg: one pipelining client child per worker (perfect
           affinity partition), wall-clock across all children.  Each
           child verifies every reply against its precomputed products
           and reports through its exit status. *)
        let t0 = clock () in
        let children =
          Array.mapi
            (fun w ep ->
              match Unix.fork () with
              | 0 ->
                  let ok =
                    try
                      let rng = Tcmm_util.Prng.create ~seed:(2600 + w) in
                      let reqs =
                        Array.init per_client (fun _ ->
                            let a, b = rand_pair rng in
                            (P.Run_matmul (spec, a, b), F.Matrix.mul a b))
                      in
                      let cl = Sv.Client.connect ep in
                      (* Windowed pipelining: enough in flight to keep
                         the server's lanes full without outrunning the
                         socket buffers. *)
                      let window = 64 in
                      let ok = ref true in
                      let i = ref 0 in
                      while !i < per_client && !ok do
                        let j = min per_client (!i + window) in
                        for k = !i to j - 1 do
                          Sv.Client.send cl (fst reqs.(k))
                        done;
                        for k = !i to j - 1 do
                          match Sv.Client.recv cl with
                          | Ok (P.Matmul_result (c, _)) ->
                              if not (F.Matrix.equal c (snd reqs.(k))) then
                                ok := false
                          | _ -> ok := false
                        done;
                        i := j
                      done;
                      Sv.Client.close cl;
                      !ok
                    with _ -> false
                  in
                  Unix._exit (if ok then 0 else 1)
              | pid -> pid)
            endpoints
        in
        Array.iter
          (fun pid ->
            match Unix.waitpid [] pid with
            | _, Unix.WEXITED 0 -> ()
            | _ -> failwith "e25: a fleet client child failed verification")
          children;
        let total = clock () -. t0 in
        let n = workers * per_client in
        (* Fleet-wide accounting must hold on the supervisor's control
           aggregate at quiescence. *)
        let agg_run =
          match Sv.Client.call control P.Metrics with
          | Ok (P.Metrics_result m) ->
              if m.P.accepted
                 <> m.P.run_requests + m.P.deadline_expired + m.P.eval_failures
              then failwith "e25: fleet-wide accounting identity violated";
              if m.P.worker_id <> 0 then
                failwith "e25: aggregate metrics carry a worker id";
              if m.P.run_requests < n + checked then
                failwith "e25: aggregate run_requests below issued requests";
              m.P.run_requests
          | _ -> failwith "e25: fleet metrics aggregation failed"
        in
        (float_of_int n /. total, checked, agg_run))
  in
  let speedup = fleet_rps /. seq_rps in
  Printf.printf
    "fleet (%d workers): %.0f req/s aggregate (%d requests, %d verified \
     differentially), %.1fx the sequential baseline\n"
    workers fleet_rps agg_run checked speedup;
  Bench_util.record ~experiment:"e25"
    [
      ("circuit", Bench_util.Str "matmul N=4 d=2 (signed, 2-bit entries)");
      ("workers", Bench_util.Int workers);
      ("seq_requests", Bench_util.Int seq_requests);
      ("fleet_requests", Bench_util.Int (workers * per_client));
      ("differential_requests", Bench_util.Int checked);
      ("aggregate_run_requests", Bench_util.Int agg_run);
      ("seq_req_per_s", Bench_util.Float seq_rps);
      ("fleet_req_per_s", Bench_util.Float fleet_rps);
      ("speedup_vs_sequential", Bench_util.Float speedup);
      ("gate", Bench_util.Float gate);
    ];
  if speedup < gate then
    failwith
      (Printf.sprintf "e25: fleet speedup %.2fx is below the %.1fx gate"
         speedup gate)

(* E26: incremental dirty-cone evaluation — a stateful {!Packed.session}
   absorbing edge-flip deltas vs full kernelized batched re-evaluation
   of the flagship trace N=16 circuit.  Each graph family first replays
   a verified pass in which every incremental state must be
   bit-identical (values, outputs, firings, per-level firings) to a
   from-scratch evaluation and the output bit must agree with the
   integer reference trace — a divergence fails the bench before any
   number is reported.  Then update latency is charted across flip
   batch sizes on Erdos–Renyi and BTER-style community graphs, and the
   single-flip update must beat the full batched re-evaluation by at
   least [gate]x (10x in the full run, a derated floor in the CI smoke
   variant on shared cores).  Recorded as BENCH_incremental.json. *)
let e26 ?(updates = 32) ?(verify_updates = 12)
    ?(batch_sizes = [ 1; 4; 16; 64 ]) ?(gate = 10.0) () =
  Bench_util.header
    "E26: incremental dirty-cone evaluation (session updates vs full re-eval)";
  let module Th = Tcmm_threshold in
  let module G = Tcmm_graph in
  let n = 16 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let best k f =
    let r, t0 = time f in
    let tmin = ref t0 in
    for _ = 2 to k do
      let _, t = time f in
      if t < !tmin then tmin := t
    done;
    (r, !tmin)
  in
  let built = Lazy.force shared_tr16 in
  let packed, t_pack =
    time (fun () -> T.Trace_circuit.pack ~kernels:true built)
  in
  let layout = built.T.Trace_circuit.layout in
  let gates = Th.Packed.num_gates packed in
  let rng = Tcmm_util.Prng.create ~seed:26 in
  let random_flip () =
    let i = Tcmm_util.Prng.int rng ~bound:(n - 1) in
    let j = Tcmm_util.Prng.int_range rng ~lo:(i + 1) ~hi:(n - 1) in
    (i, j)
  in
  let random_batch size = List.init size (fun _ -> random_flip ()) in
  (* The full re-evaluation baselines are family-independent and all run
     the same kernelized engine the server's batcher uses.  The gate
     compares against the 1-lane kernelized run: that is what a
     streaming client pays per flip without incrementality — one update
     demands one fresh answer and cannot be amortized across the 62
     unrelated lanes of a throughput batch.  The amortized B=62 figure
     and the plain one-shot run are recorded as context. *)
  let batch = 62 in
  let full_inputs =
    Array.init batch (fun _ ->
        T.Trace_circuit.encode_input built
          (G.Graph.adjacency (G.Generate.erdos_renyi rng ~n ~p:0.3)))
  in
  let ws = Th.Packed.workspace () in
  let _, t_full_batch =
    best 3 (fun () -> Th.Packed.run_batch ~ws packed full_inputs)
  in
  let full_vec = t_full_batch /. float_of_int batch in
  let _, t_full_seq = best 3 (fun () -> Th.Packed.run packed full_inputs.(0)) in
  let _, t_full_1 =
    best 3 (fun () -> Th.Packed.run_batch ~ws packed [| full_inputs.(0) |])
  in
  let full_stream = min t_full_1 t_full_seq in
  Printf.printf
    "full re-eval baseline: %.3f ms kernelized 1-lane, %.3f ms one-shot, %.3f \
     ms/vector amortized batched (B=%d); pack %.2f s\n%!"
    (t_full_1 *. 1e3) (t_full_seq *. 1e3) (full_vec *. 1e3) batch t_pack;
  let families =
    [
      ("er", fun rng -> G.Generate.erdos_renyi rng ~n ~p:0.3);
      ( "bter",
        fun rng ->
          G.Generate.blocked_community rng ~blocks:4 ~block_size:4 ~p_in:0.6
            ~p_out:0.05 );
    ]
  in
  let rows =
    List.concat_map
      (fun (family, gen) ->
        (* Divergence gate: a verified pass where every incremental
           state is checked bit-identical against from-scratch
           evaluation and against the integer reference trace. *)
        let g = ref (gen (Tcmm_util.Prng.create ~seed:260)) in
        let session =
          Th.Packed.session packed
            (T.Trace_circuit.encode_input built (G.Graph.adjacency !g))
        in
        let check where (res : Th.Simulator.result) =
          let adj = G.Graph.adjacency !g in
          let fresh =
            Th.Packed.run packed (T.Trace_circuit.encode_input built adj)
          in
          if
            res.Th.Simulator.outputs <> fresh.Th.Simulator.outputs
            || res.Th.Simulator.firings <> fresh.Th.Simulator.firings
            || res.Th.Simulator.level_firings
               <> fresh.Th.Simulator.level_firings
            || not
                 (Bytes.equal res.Th.Simulator.values fresh.Th.Simulator.values)
          then
            failwith
              (Printf.sprintf
                 "e26: %s incremental state diverges from from-scratch (%s)"
                 family where);
          let fires =
            Bytes.get res.Th.Simulator.values built.T.Trace_circuit.output
            <> '\000'
          in
          if
            fires
            <> (T.Trace_circuit.reference adj >= built.T.Trace_circuit.tau)
          then
            failwith
              (Printf.sprintf
                 "e26: %s output bit disagrees with integer reference (%s)"
                 family where)
        in
        check "base" (Th.Packed.session_result session);
        for u = 1 to verify_updates do
          let g', delta =
            G.Stream.delta ~layout !g (random_batch ((u mod 3) + 1))
          in
          g := g';
          check (Printf.sprintf "update %d" u) (Th.Packed.update session delta)
        done;
        (* Timed legs: one fresh session per batch size; deltas are
           precomputed (graph evolution is client-side bookkeeping) so
           the timer sees only Packed.update. *)
        List.map
          (fun size ->
            let g = ref (gen (Tcmm_util.Prng.create ~seed:(261 + size))) in
            let session =
              Th.Packed.session packed
                (T.Trace_circuit.encode_input built (G.Graph.adjacency !g))
            in
            let stats0 = Th.Packed.session_stats session in
            let deltas =
              Array.init updates (fun _ ->
                  let g', d = G.Stream.delta ~layout !g (random_batch size) in
                  g := g';
                  d)
            in
            let _, t =
              time (fun () ->
                  Array.iter
                    (fun d -> ignore (Th.Packed.update session d))
                    deltas)
            in
            let stats1 = Th.Packed.session_stats session in
            let per_update = t /. float_of_int updates in
            let dirty =
              float_of_int
                (stats1.Th.Packed.su_dirty_gates
                - stats0.Th.Packed.su_dirty_gates)
              /. float_of_int updates
            in
            let speedup = full_stream /. per_update in
            if size = 1 && speedup < gate then
              failwith
                (Printf.sprintf
                   "e26: %s single-flip update only %.1fx faster than full \
                    kernelized re-eval (gate %.1fx)"
                   family speedup gate);
            Bench_util.record ~experiment:"e26"
              [
                ("circuit", Bench_util.Str "trace N=16 d=2 (Theorem 4.5)");
                ("family", Bench_util.Str family);
                ("batch_flips", Bench_util.Int size);
                ("updates", Bench_util.Int updates);
                ("gates", Bench_util.Int gates);
                ("update_seconds", Bench_util.Float per_update);
                ("dirty_gates_mean", Bench_util.Float dirty);
                ( "dirty_ratio",
                  Bench_util.Float (dirty /. float_of_int gates) );
                ("full_1lane_seconds", Bench_util.Float t_full_1);
                ("full_seq_seconds", Bench_util.Float t_full_seq);
                ( "full_batched_seconds_per_vector",
                  Bench_util.Float full_vec );
                ("speedup_vs_full", Bench_util.Float speedup);
                ( "speedup_vs_full_batched",
                  Bench_util.Float (full_vec /. per_update) );
                ("gate", Bench_util.Float (if size = 1 then gate else 0.));
              ];
            [
              Tb.Str family;
              Tb.Int size;
              Tb.Str (Printf.sprintf "%.3f ms" (per_update *. 1e3));
              Tb.Str
                (Printf.sprintf "%.0f (%.1f%%)" dirty
                   (100. *. dirty /. float_of_int gates));
              Tb.Str (Printf.sprintf "%.1fx" speedup);
            ])
          batch_sizes)
      families
  in
  Tb.print
    ~title:
      (Printf.sprintf
         "trace N=16 d=2: %d gates; incremental update vs %.3f ms full \
          kernelized re-eval"
         gates (full_stream *. 1e3))
    ~header:
      [ "family"; "flips/update"; "update latency"; "dirty gates"; "speedup" ]
    ~rows

(* E27: the algorithm/workload matrix — exact circuit accounting for
   every bundled fast-matmul algorithm (Strassen, Winograd's 15-product
   variant, the Kronecker-squared <4,4,4;49>, and Laderman's <3,3,3;23>)
   with and without the Kronecker-power linear-layer factoring.  All
   builds are count-only (the accounting is exact either way); value
   identity of the kronpow arm is locked down separately by the test
   suite and the differential fuzzer, so this bench charts size only:
   gates/edges/depth per (algorithm, N) against the sparsity profile's
   gamma^d — the paper's Section 3 knob that drives the subcubic wire
   exponent — plus the measured kronpow reduction.  The kronpow arm is
   gated: its admissibility rule promises gates and edges never exceed
   the flat build, and any regression fails the bench hard.  Recorded as
   BENCH_algos.json. *)
let e27 ?(entry_bits = 6) ?(d = 2)
    ?(matrix =
      [
        ("strassen", [ 8; 16 ]);
        ("winograd", [ 8; 16 ]);
        ("strassen^2", [ 16 ]);
        ("laderman", [ 9; 27 ]);
      ]) () =
  Bench_util.header
    "E27: algorithm matrix (gates/edges per algo x N, kronpow arms, gamma^d)";
  let module Th = Tcmm_threshold in
  let rows =
    List.concat_map
      (fun (name, ns) ->
        let algo =
          List.find
            (fun a -> a.F.Bilinear.name = name)
            (F.Instances.all ())
        in
        let prof = F.Sparsity.analyze algo in
        let gamma = prof.F.Sparsity.overall.F.Sparsity.gamma in
        let gamma_d = Float.pow gamma (float_of_int d) in
        List.map
          (fun n ->
            let schedule =
              T.Level_schedule.resolve ~algo ~name:"thm45" ~d ~n
            in
            let build ~kronpow =
              let t0 = Unix.gettimeofday () in
              let b =
                T.Matmul_circuit.build ~mode:Th.Builder.Count_only ~kronpow
                  ~algo ~schedule ~entry_bits ~n ()
              in
              (T.Matmul_circuit.stats b, Unix.gettimeofday () -. t0)
            in
            let flat, t_flat = build ~kronpow:false in
            let kron, t_kron = build ~kronpow:true in
            if
              kron.Th.Stats.gates > flat.Th.Stats.gates
              || kron.Th.Stats.edges > flat.Th.Stats.edges
            then
              failwith
                (Printf.sprintf
                   "e27: kronpow grew %s N=%d (gates %d -> %d, edges %d -> %d)"
                   name n flat.Th.Stats.gates kron.Th.Stats.gates
                   flat.Th.Stats.edges kron.Th.Stats.edges);
            let reduction part whole =
              1. -. (float_of_int part /. float_of_int (max 1 whole))
            in
            let edge_red = reduction kron.Th.Stats.edges flat.Th.Stats.edges in
            Bench_util.record ~experiment:"e27"
              [
                ("algo", Bench_util.Str name);
                ("n", Bench_util.Int n);
                ("d", Bench_util.Int d);
                ("entry_bits", Bench_util.Int entry_bits);
                ("omega", Bench_util.Float prof.F.Sparsity.omega);
                ("gamma", Bench_util.Float gamma);
                ("gamma_pow_d", Bench_util.Float gamma_d);
                ("flat_gates", Bench_util.Int flat.Th.Stats.gates);
                ("flat_edges", Bench_util.Int flat.Th.Stats.edges);
                ("flat_depth", Bench_util.Int flat.Th.Stats.depth);
                ("kronpow_gates", Bench_util.Int kron.Th.Stats.gates);
                ("kronpow_edges", Bench_util.Int kron.Th.Stats.edges);
                ("kronpow_depth", Bench_util.Int kron.Th.Stats.depth);
                ( "kronpow_gate_reduction",
                  Bench_util.Float
                    (reduction kron.Th.Stats.gates flat.Th.Stats.gates) );
                ("kronpow_edge_reduction", Bench_util.Float edge_red);
                ("flat_build_seconds", Bench_util.Float t_flat);
                ("kronpow_build_seconds", Bench_util.Float t_kron);
              ];
            [
              Tb.Str name;
              Tb.Int n;
              Tb.Float gamma;
              Tb.Float gamma_d;
              Tb.Int flat.Th.Stats.gates;
              Tb.Int flat.Th.Stats.edges;
              Tb.Int kron.Th.Stats.edges;
              Tb.Str
                (Printf.sprintf "%.3f%% (-%d)" (100. *. edge_red)
                   (flat.Th.Stats.edges - kron.Th.Stats.edges));
              Tb.Str
                (Printf.sprintf "%d+%d" flat.Th.Stats.depth
                   (kron.Th.Stats.depth - flat.Th.Stats.depth));
            ])
          ns)
      matrix
  in
  Tb.print
    ~title:
      (Printf.sprintf
         "matmul thm45 d=%d, %d-bit entries: flat vs kronpow accounting"
         d entry_bits)
    ~header:
      [
        "algo"; "N"; "gamma"; "gamma^d"; "gates"; "edges"; "kron edges";
        "edge cut"; "depth+kron";
      ]
    ~rows

(* e18, e19, e21, and e25 fork server children; they are listed before
   e17 because Unix.fork is forbidden after e17 has spawned worker
   domains. *)
let all_experiments =
  [
    ("e1", Experiments.e1);
    ("e2", Experiments.e2);
    ("e3", Experiments.e3);
    ("e4", Experiments.e4);
    ("e5", Experiments.e5);
    ("e6", Experiments.e6);
    ("e7", Experiments.e7);
    ("e8", e8);
    ("e9", Experiments.e9);
    ("e10", Experiments.e10);
    ("e11", Experiments.e11);
    ("e12", Experiments.e12);
    ("e13", Experiments.e13);
    ("e14", Experiments.e14);
    ("e15", Experiments.e15);
    ("e18", e18);
    ("e19", e19);
    ("e21", e21);
    (* e25 forks a fleet supervisor plus per-worker client children; the
       smoke variant is the CI subset (3 workers, fewer requests, a
       correspondingly lower speedup gate on shared CI cores). *)
    ("e25", fun () -> e25 ());
    ( "e25-smoke",
      fun () ->
        e25 ~workers:3 ~per_client:150 ~seq_requests:150 ~gate:1.5 () );
    (* e20 spawns domains for its parallel lowering legs, so it sits
       after the forking experiments (e18/e19), like e17. *)
    ("e20", fun () -> Experiments.e20 ());
    ("e20-smoke", fun () -> Experiments.e20 ~ns:[ 8 ] ());
    ("e17", e17);
    (* e23 spawns domains too; the smoke variant is the CI subset (N=16,
       fewer domain counts) and still fails hard on any kernel-vs-generic
       divergence. *)
    ("e23", fun () -> e23 ());
    ("e23-smoke", fun () -> e23 ~ns:[ 16 ] ~domain_counts:[ 1; 2 ] ());
    (* e24 neither forks nor spawns domains; the smoke variant is the
       CI subset (N=8 only, same differential gates, no speedup floor
       at that size). *)
    ("e24", fun () -> e24 ());
    ("e24-smoke", fun () -> e24 ~ns:[ 8 ] ());
    (* e26 neither forks nor spawns domains; the smoke variant keeps the
       full divergence gate but derates the speedup floor for shared CI
       cores and trims the update counts. *)
    ("e26", fun () -> e26 ());
    ( "e26-smoke",
      fun () ->
        e26 ~updates:12 ~verify_updates:8 ~batch_sizes:[ 1; 16 ] ~gate:3.0 ()
    );
    (* e27 neither forks nor spawns domains (count-only builds); the
       smoke variant trims the matrix to one size per algorithm but
       keeps the kronpow never-grows gate. *)
    ("e27", fun () -> e27 ());
    ( "e27-smoke",
      fun () ->
        e27
          ~matrix:
            [
              ("strassen", [ 8 ]); ("winograd", [ 8 ]); ("strassen^2", [ 16 ]);
              ("laderman", [ 9 ]);
            ]
          () );
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ ->
        (* The -smoke variants are CI subsets; a full run does the real
           experiments only. *)
        List.filter
          (fun e ->
            e <> "e20-smoke" && e <> "e23-smoke" && e <> "e24-smoke"
            && e <> "e25-smoke" && e <> "e26-smoke" && e <> "e27-smoke")
          (List.map fst all_experiments)
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all_experiments with
      | Some f ->
          f ();
          (* Large count-only builds leave big heaps behind; return the
             memory before the next experiment. *)
          Gc.compact ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst all_experiments));
          exit 2)
    requested;
  Bench_util.write_json
    ~only:(fun e ->
      e <> "e18" && e <> "e19" && e <> "e20" && e <> "e21" && e <> "e23"
      && e <> "e24" && e <> "e25" && e <> "e26" && e <> "e27")
    "BENCH_simulator.json";
  Bench_util.write_json ~only:(fun e -> e = "e18") "BENCH_server.json";
  Bench_util.write_json ~only:(fun e -> e = "e19") "BENCH_check.json";
  Bench_util.write_json ~only:(fun e -> e = "e20") "BENCH_build.json";
  Bench_util.write_json ~only:(fun e -> e = "e21") "BENCH_serve_robust.json";
  Bench_util.write_json ~only:(fun e -> e = "e23") "BENCH_kernels.json";
  Bench_util.write_json ~only:(fun e -> e = "e24") "BENCH_store.json";
  Bench_util.write_json ~only:(fun e -> e = "e25") "BENCH_fleet.json";
  Bench_util.write_json ~only:(fun e -> e = "e26") "BENCH_incremental.json";
  Bench_util.write_json ~only:(fun e -> e = "e27") "BENCH_algos.json";
  print_endline "done."
